"""The chaos injector: a sim process that walks a failure schedule and
applies each event to whatever cluster is currently the target.

The injector is deliberately decoupled from recovery: it notifies armed
waiters when a *fatal* failure lands (the job just died), records every
event either way, and keeps walking the schedule across job generations —
failures drawn while no cluster is active (between a teardown and the next
restart attempt) are recorded as missed, like lightning striking an empty
rack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..hardware.cluster import Cluster
from ..sim import Environment, Event, Interrupt
from .models import apply_failure
from .schedule import FailureSchedule

__all__ = ["FailureRecord", "Injector"]


@dataclass
class FailureRecord:
    """One failure as it actually landed (or missed)."""

    t: float
    kind: str
    node_index: int
    fatal: bool
    applied: bool
    detail: str


class Injector:
    """Applies a :class:`FailureSchedule` to the active cluster."""

    #: opt-in lifecycle tracer (``repro.obs.trace``), installed class-wide
    #: by ``install_tracer``: every injected (or missed) failure emits a
    #: ``fault.inject`` record when a tracer is attached.
    tracer = None

    def __init__(self, env: Environment, schedule: FailureSchedule,
                 name: str = "injector"):
        self.env = env
        self.name = name
        self.schedule = schedule
        self.records: List[FailureRecord] = []
        self.on_failure: List[Callable[[FailureRecord], None]] = []
        self._target: Optional[Cluster] = None
        self._waiters: List[Event] = []
        self._proc = env.process(self._run(), name=name)

    # -- wiring ---------------------------------------------------------------

    def set_target(self, cluster: Cluster) -> None:
        """Point the chaos at ``cluster`` (the current job generation)."""
        self._target = cluster

    def clear_target(self) -> None:
        """Failures drawn from now on are recorded but hit nothing."""
        self._target = None

    def arm(self) -> Event:
        """An event that fires (with the FailureRecord) on the next fatal
        failure that actually lands."""
        evt = self.env.event()
        self._waiters.append(evt)
        return evt

    def stop(self) -> None:
        """Stop the schedule walker (uses the kernel's interrupt path —
        the injector may be mid-sleep toward its next failure)."""
        if self._proc.is_alive:
            self._proc.interrupt("chaos-stop")

    @property
    def stopped(self) -> bool:
        return not self._proc.is_alive

    # -- the walker ------------------------------------------------------------

    def _run(self):
        try:
            for event in self.schedule.events():
                delay = event.t - self.env.now
                if delay > 0:
                    yield self.env.timeout(delay)
                self._apply(event)
        except Interrupt:
            return

    def _apply(self, event) -> None:
        cluster = self._target
        if cluster is None:
            record = FailureRecord(
                t=self.env.now, kind=event.kind,
                node_index=event.node_index, fatal=False, applied=False,
                detail="no active cluster (missed)")
        else:
            applied = apply_failure(cluster, event)
            record = FailureRecord(
                t=self.env.now, kind=event.kind,
                node_index=event.node_index, fatal=applied.fatal,
                applied=True, detail=applied.detail)
            if applied.heal is not None:
                self.env.process(
                    self._heal_later(applied.heal, applied.heal_after),
                    name="injector.heal")
        self.records.append(record)
        if self.tracer is not None:
            self.tracer.emit("fault.inject", self.name, self.env.now,
                             fault=record.kind, node=record.node_index,
                             fatal=record.fatal, applied=record.applied)
        for callback in self.on_failure:
            callback(record)
        if record.fatal and record.applied:
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed(record)

    def _heal_later(self, heal: Callable[[], None], after: float):
        yield self.env.timeout(after)
        heal()
