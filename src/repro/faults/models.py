"""What each failure kind does to the simulated hardware.

Fatal kinds (whole-node crash, HCA failure, fabric partition) break the
job irrecoverably in place — processes die or wedge — and are what the
RecoveryManager restarts from checkpoint.  Transient kinds (link
degradation, straggler node) perturb performance for a bounded duration
and heal on their own; the job limps through them.  Silent kinds
(checkpoint-chunk corruption) damage data at rest without killing
anything — they surface only when a restart's digest verification trips
over the rotten bytes (``repro.store``'s corruption defence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..hardware.cluster import Cluster
from ..hardware.storage import StorageError
from .schedule import FailureEvent

__all__ = ["AppliedFailure", "FAILURE_KINDS", "FATAL_KINDS",
           "SILENT_KINDS", "apply_failure"]

FATAL_KINDS = frozenset({"node-crash", "hca-fail", "link-partition"})
TRANSIENT_KINDS = frozenset({"link-degrade", "straggler",
                             "lustre-brownout"})
SILENT_KINDS = frozenset({"ckpt-corrupt"})
FAILURE_KINDS = FATAL_KINDS | TRANSIENT_KINDS | SILENT_KINDS


@dataclass
class AppliedFailure:
    """The outcome of applying one event to a cluster."""

    detail: str
    fatal: bool
    heal: Optional[Callable[[], None]] = None  # transient: undo
    heal_after: float = 0.0                    # seconds until heal


def apply_failure(cluster: Cluster, event: FailureEvent) -> AppliedFailure:
    """Mutate ``cluster`` per ``event``; returns what happened and how (for
    transient kinds) to undo it after ``heal_after`` seconds."""
    node = cluster.nodes[event.node_index % len(cluster.nodes)]
    kind = event.kind
    fatal = kind in FATAL_KINDS

    if kind == "node-crash":
        if node.failed:
            return AppliedFailure(f"{node.name}: already down", fatal)
        node.fail()
        return AppliedFailure(f"{node.name}: node crash", fatal)

    if kind == "hca-fail":
        if node.hca is None:
            return AppliedFailure(f"{node.name}: no HCA to fail", False)
        if node.hca.failed:
            return AppliedFailure(f"{node.name}: HCA already dead", fatal)
        node.hca.fail()
        return AppliedFailure(f"{node.name}: HCA failure", fatal)

    if kind == "link-partition":
        fabric = cluster.fabric
        if fabric is None or node.hca is None or node.hca.lid is None:
            return AppliedFailure(
                f"{node.name}: not on a fabric to partition", False)
        fabric.partition([node.hca.lid])
        return AppliedFailure(
            f"{node.name}: partitioned off the fabric", fatal)

    if kind == "link-degrade":
        network = cluster.fabric if cluster.fabric is not None \
            else cluster.ethernet
        bw = float(event.params.get("bandwidth_factor", 0.1))
        lat = float(event.params.get("latency_factor", 10.0))
        duration = float(event.params.get("duration", 1.0))
        network.degrade(bandwidth_factor=bw, latency_factor=lat)
        return AppliedFailure(
            f"{network.name}: degraded to {bw:.2g}x bw, {lat:.2g}x latency "
            f"for {duration:.3g}s", fatal=False,
            heal=network.heal, heal_after=duration)

    if kind == "ckpt-corrupt":
        # silent bit rot in the checkpoint store's chunk pool: flip the
        # leading byte of one stored chunk on the victim node's tier.
        # Nothing notices now — the digest check at the next fetch does.
        from ..store.manifest import CHUNK_PREFIX  # no cycle: store is leaf
        tier = str(event.params.get("tier", "local"))
        if tier == "local":
            fs = node.local_disk.fs
        elif tier == "lustre":
            if cluster.lustre_fs is None:
                return AppliedFailure(
                    f"{node.name}: no Lustre tier to corrupt", False)
            fs = cluster.lustre_fs
        else:
            raise ValueError(f"unknown ckpt-corrupt tier {tier!r}")
        chunks = fs.listdir(CHUNK_PREFIX)
        if not chunks:
            return AppliedFailure(
                f"{fs.name}: no chunks to corrupt", False)
        index = int(event.params.get("index", 0))
        path = chunks[index % len(chunks)]
        try:
            blob = fs.load(path)
            fs.store(path, bytes([blob[0] ^ 0xFF]) + blob[1:]
                     if blob else b"\xff", fs.logical_size(path))
        except StorageError:
            return AppliedFailure(f"{fs.name}: chunk vanished mid-flip",
                                  False)
        return AppliedFailure(
            f"{fs.name}: corrupted chunk {path} ({tier} tier)",
            fatal=False)

    if kind == "lustre-brownout":
        # the shared tier's MDS/OST partition stops answering: every
        # client sees the whole tier dead (LustreTier.alive) until the
        # servers come back.  Data at rest is untouched — a post-copy
        # pager just has to outwait the brownout (or fall back to a
        # cheaper tier holding the chunk).
        if cluster.lustre_fs is None:
            return AppliedFailure(
                f"{cluster.name}: no Lustre tier to brown out", False)
        duration = float(event.params.get("duration", 1.0))
        if getattr(cluster, "lustre_down", False):
            return AppliedFailure(
                f"{cluster.name}: Lustre already browned out", False)
        cluster.lustre_down = True

        def heal():
            cluster.lustre_down = False

        return AppliedFailure(
            f"{cluster.name}: Lustre brownout for {duration:.3g}s",
            fatal=False, heal=heal, heal_after=duration)

    if kind == "straggler":
        factor = float(event.params.get("factor", 4.0))
        duration = float(event.params.get("duration", 1.0))
        node.slow_down(factor)
        return AppliedFailure(
            f"{node.name}: straggling {factor:.2g}x slower for "
            f"{duration:.3g}s", fatal=False,
            heal=node.restore_speed, heal_after=duration)

    raise ValueError(f"unknown failure kind {kind!r}")
