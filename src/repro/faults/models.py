"""What each failure kind does to the simulated hardware.

Fatal kinds (whole-node crash, HCA failure, fabric partition) break the
job irrecoverably in place — processes die or wedge — and are what the
RecoveryManager restarts from checkpoint.  Transient kinds (link
degradation, straggler node) perturb performance for a bounded duration
and heal on their own; the job limps through them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..hardware.cluster import Cluster
from .schedule import FailureEvent

__all__ = ["AppliedFailure", "FAILURE_KINDS", "FATAL_KINDS", "apply_failure"]

FATAL_KINDS = frozenset({"node-crash", "hca-fail", "link-partition"})
TRANSIENT_KINDS = frozenset({"link-degrade", "straggler"})
FAILURE_KINDS = FATAL_KINDS | TRANSIENT_KINDS


@dataclass
class AppliedFailure:
    """The outcome of applying one event to a cluster."""

    detail: str
    fatal: bool
    heal: Optional[Callable[[], None]] = None  # transient: undo
    heal_after: float = 0.0                    # seconds until heal


def apply_failure(cluster: Cluster, event: FailureEvent) -> AppliedFailure:
    """Mutate ``cluster`` per ``event``; returns what happened and how (for
    transient kinds) to undo it after ``heal_after`` seconds."""
    node = cluster.nodes[event.node_index % len(cluster.nodes)]
    kind = event.kind
    fatal = kind in FATAL_KINDS

    if kind == "node-crash":
        if node.failed:
            return AppliedFailure(f"{node.name}: already down", fatal)
        node.fail()
        return AppliedFailure(f"{node.name}: node crash", fatal)

    if kind == "hca-fail":
        if node.hca is None:
            return AppliedFailure(f"{node.name}: no HCA to fail", False)
        if node.hca.failed:
            return AppliedFailure(f"{node.name}: HCA already dead", fatal)
        node.hca.fail()
        return AppliedFailure(f"{node.name}: HCA failure", fatal)

    if kind == "link-partition":
        fabric = cluster.fabric
        if fabric is None or node.hca is None or node.hca.lid is None:
            return AppliedFailure(
                f"{node.name}: not on a fabric to partition", False)
        fabric.partition([node.hca.lid])
        return AppliedFailure(
            f"{node.name}: partitioned off the fabric", fatal)

    if kind == "link-degrade":
        network = cluster.fabric if cluster.fabric is not None \
            else cluster.ethernet
        bw = float(event.params.get("bandwidth_factor", 0.1))
        lat = float(event.params.get("latency_factor", 10.0))
        duration = float(event.params.get("duration", 1.0))
        network.degrade(bandwidth_factor=bw, latency_factor=lat)
        return AppliedFailure(
            f"{network.name}: degraded to {bw:.2g}x bw, {lat:.2g}x latency "
            f"for {duration:.3g}s", fatal=False,
            heal=network.heal, heal_after=duration)

    if kind == "straggler":
        factor = float(event.params.get("factor", 4.0))
        duration = float(event.params.get("duration", 1.0))
        node.slow_down(factor)
        return AppliedFailure(
            f"{node.name}: straggling {factor:.2g}x slower for "
            f"{duration:.3g}s", fatal=False,
            heal=node.restore_speed, heal_after=duration)

    raise ValueError(f"unknown failure kind {kind!r}")
