"""Chaos harness: NAS under fault injection, end to end.

:func:`run_chaos_nas` assembles the whole stack — environment, seeded RNG,
Poisson failure schedule, injector, recovery manager, a fresh cluster per
job generation — runs a NAS kernel to completion through failures, and
returns a :class:`ChaosOutcome`.  Everything stochastic descends from one
root seed, so two same-seed runs are bit-for-bit identical.

:func:`verify_restart_path` exercises the plugin's restart machinery under
an *injected crash* (not a graceful teardown): freeze a live job, let the
injector kill a node out from under it mid-flight, restart on a spare
cluster, and report the plugin counters (WQE re-posts, CQ refills, modify
replays) plus the id re-virtualization evidence.

:func:`young_daly_interval` is the first-order optimal checkpoint period
τ* = sqrt(2 · MTBF_job · C) the fault sweep validates against.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..apps.ml import ml_app
from ..apps.nas import ft_app, lu_app
from ..core import InfinibandPlugin
from ..dmtcp import DEFAULT_COSTS, CostModel, dmtcp_launch, dmtcp_restart
from ..hardware import BUFFALO_CCR, Cluster, HardwareSpec
from ..mpi import make_mpi_specs
from ..sim import Environment, RngFactory
from .injector import FailureRecord, Injector
from .models import apply_failure  # noqa: F401  (re-exported convenience)
from .recovery import RecoveryConfig, RecoveryManager, RecoveryOutcome
from .schedule import (FailureEvent, FailureSchedule, FixedSchedule,
                       PoissonSchedule)

__all__ = [
    "ChaosOutcome",
    "run_chaos_nas",
    "verify_restart_path",
    "young_daly_interval",
]

_APPS = {"lu": lu_app, "ft": ft_app, "ml": ml_app}


def _maybe_monitored(analysis: bool):
    """Context manager: a fresh strict ProtocolMonitor when ``analysis``
    is on, a no-op otherwise.  Imported lazily — ``faults`` must not
    depend on ``analysis`` unless the caller opts in."""
    if not analysis:
        return contextlib.nullcontext(None)
    from ..analysis.protocol import monitored
    return monitored(strict=True)


def _maybe_traced(trace: bool):
    """Context manager: a fresh class-wide lifecycle Tracer when
    ``trace`` is on, a no-op otherwise.  Imported lazily — ``faults``
    must not depend on ``obs`` unless the caller opts in."""
    if not trace:
        return contextlib.nullcontext(None)
    from ..obs.trace import traced
    return traced()


def _maybe_chunksan(chunksan: bool):
    """Context manager: a fresh class-wide ChunkSan oracle when
    ``chunksan`` is on, a no-op otherwise.  Imported lazily — same
    opt-in contract as ``_maybe_monitored``/``_maybe_traced``."""
    if not chunksan:
        return contextlib.nullcontext(None)
    from ..analysis.chunksan import sanitized
    return sanitized()


def young_daly_interval(mtbf_job: float, ckpt_cost: float) -> float:
    """Young's first-order optimum τ* = sqrt(2 · MTBF_job · C), where
    MTBF_job = mtbf_node / n_nodes and C is one checkpoint's wall cost."""
    return math.sqrt(2.0 * mtbf_job * ckpt_cost)


@dataclass
class ChaosOutcome:
    """One chaos run, fully described."""

    app: str
    klass: str
    nprocs: int
    n_nodes: int
    mtbf_node: float
    ckpt_interval: float
    seed: int
    checksum: float
    recovery: RecoveryOutcome
    failures: List[FailureRecord] = field(default_factory=list)
    #: ProtocolMonitor.summary() when the run was made with analysis=True
    protocol: Optional[Dict[str, Any]] = None
    #: the lifecycle trace (event dicts, see ``repro.obs.trace``) when
    #: the run was made with trace=True
    trace_events: Optional[List[Dict[str, Any]]] = None
    #: ChunkSan.summary() when the run was made with chunksan=True (the
    #: run raising no ChunkSanError IS the verdict; this records volume)
    chunksan: Optional[Dict[str, Any]] = None
    #: event-kernel counters (``Environment.stats.snapshot()``): events
    #: processed, heap peak, same-timestamp batch shape
    sim_stats: Optional[Dict[str, Any]] = None

    @property
    def completion_seconds(self) -> float:
        return self.recovery.completion_seconds

    def fingerprint(self) -> tuple:
        """Everything that must be bit-identical across same-seed runs."""
        return (self.checksum, self.completion_seconds,
                self.recovery.n_failures, self.recovery.n_checkpoints,
                self.recovery.n_restarts, self.recovery.lost_work,
                tuple((r.t, r.kind, r.node_index, r.fatal, r.applied)
                      for r in self.failures))


def run_chaos_nas(app: str = "lu", klass: str = "A", nprocs: int = 4,
                  ppn: int = 1, spec: HardwareSpec = BUFFALO_CCR,
                  mtbf_node: float = 100.0, ckpt_interval: float = 10.0,
                  seed: int = 2014, iters_sim: int = 0,
                  kind: str = "node-crash",
                  schedule: Optional[FailureSchedule] = None,
                  max_attempts: int = 8, backoff_base: float = 0.5,
                  backoff_factor: float = 2.0, backoff_max: float = 8.0,
                  backoff_jitter: float = 0.0,
                  disk_kind: str = "local", gzip: bool = True,
                  incremental: bool = False, ckpt_workers: int = 0,
                  use_store: bool = False,
                  costs: CostModel = DEFAULT_COSTS,
                  analysis: bool = False,
                  trace: bool = False,
                  chunksan: bool = False) -> ChaosOutcome:
    """Run one NAS kernel to completion under chaos; see module docstring.

    ``schedule`` overrides the default per-node Poisson(``mtbf_node``)
    schedule of ``kind`` failures (pass ``FixedSchedule([])`` for a
    failure-free run, e.g. to measure the checkpoint cost C).
    ``use_store`` lands checkpoints in a content-addressed multi-tier
    :class:`~repro.store.CheckpointStore` (dedup + partner replication +
    digest-verified restart) instead of monolithic image files.
    ``analysis`` runs the whole job under a strict
    :class:`~repro.analysis.ProtocolMonitor`; its summary lands in
    :attr:`ChaosOutcome.protocol`.  ``trace`` runs it under a fresh
    :class:`~repro.obs.Tracer`; the recorded events land in
    :attr:`ChaosOutcome.trace_events`.  ``chunksan`` runs it under the
    :class:`~repro.analysis.ChunkSan` shadow oracle — every capture
    audits the chunk stamps against true content, a stale stamp aborts
    the run with a ``ChunkSanError`` — and its volume counters land in
    :attr:`ChaosOutcome.chunksan`.
    """
    app_fn = _APPS[app]
    env = Environment()
    rng = RngFactory(seed)
    n_nodes = max(1, -(-nprocs // ppn))

    def wrapped(ctx, comm):
        result = yield from app_fn(ctx, comm, klass=klass,
                                   iters_sim=iters_sim)
        return result

    def cluster_factory(tag: str) -> Cluster:
        return Cluster(env, spec, n_nodes=n_nodes, rng=rng,
                       name=f"chaos-{app}{klass}-{seed}-{tag}")

    def specs_for(cluster: Cluster):
        return make_mpi_specs(cluster, nprocs, wrapped, ppn=ppn)

    if schedule is None:
        schedule = PoissonSchedule(rng, n_nodes=n_nodes,
                                   mtbf_node=mtbf_node, kind=kind)
    injector = Injector(env, schedule)
    config = RecoveryConfig(
        ckpt_interval=ckpt_interval, disk_kind=disk_kind, gzip=gzip,
        incremental=incremental, ckpt_workers=ckpt_workers,
        use_store=use_store, max_attempts=max_attempts,
        backoff_base=backoff_base, backoff_factor=backoff_factor,
        backoff_max=backoff_max, backoff_jitter=backoff_jitter)
    manager = RecoveryManager(
        env, cluster_factory, specs_for, config, costs=costs,
        plugin_factory=lambda: [InfinibandPlugin(costs=costs)],
        injector=injector, rng=rng)
    with _maybe_monitored(analysis) as monitor, \
            _maybe_traced(trace) as tracer, \
            _maybe_chunksan(chunksan) as san:
        recovery = env.run(until=env.process(manager.run()))
    injector.stop()
    return ChaosOutcome(
        app=app, klass=klass, nprocs=nprocs, n_nodes=n_nodes,
        mtbf_node=mtbf_node, ckpt_interval=ckpt_interval, seed=seed,
        checksum=recovery.results[0].checksum, recovery=recovery,
        failures=list(injector.records),
        protocol=monitor.summary() if monitor is not None else None,
        trace_events=tracer.events if tracer is not None else None,
        chunksan=san.summary() if san is not None else None,
        sim_stats=env.stats.snapshot()
        if getattr(env, "stats", None) is not None else None)


def verify_restart_path(seed: int = 2014, klass: str = "A",
                        nprocs: int = 4, ppn: int = 1,
                        spec: HardwareSpec = BUFFALO_CCR,
                        crash_node_index: int = 1,
                        freeze_after: float = 0.25,
                        costs: CostModel = DEFAULT_COSTS,
                        analysis: bool = False) -> Dict[str, Any]:
    """Freeze a live LU job, crash a node *via the injector* instead of a
    graceful teardown, restart on a spare cluster, and report the restart
    path's evidence (satellite check of §3's principles under failure).

    Returns a dict with per-plugin counters summed (``reposted_sends``,
    ``reposted_recvs``, ``replayed_modifies``, ``drained_completions``),
    the id re-virtualization booleans, and the completed job's results.
    """
    env = Environment()
    rng = RngFactory(seed)
    n_nodes = max(1, -(-nprocs // ppn))
    cluster = Cluster(env, spec, n_nodes=n_nodes, rng=rng,
                      name=f"vrp-{seed}-prod")
    plugins: List[InfinibandPlugin] = []

    def factory():
        plugin = InfinibandPlugin(costs=costs)
        plugins.append(plugin)
        return [plugin]

    def wrapped(ctx, comm):
        result = yield from lu_app(ctx, comm, klass=klass)
        return result

    specs = make_mpi_specs(cluster, nprocs, wrapped, ppn=ppn)

    def scenario():
        session = yield from dmtcp_launch(cluster, specs,
                                          plugin_factory=factory,
                                          costs=costs)
        yield env.timeout(freeze_after)  # mid-iteration, traffic in flight
        ckpt = yield from session.checkpoint(intent="restart")
        # the failure: a node dies for real (injector, not teardown) — the
        # frozen continuations survive because the freeze detached them
        injector = Injector(env, FixedSchedule([
            FailureEvent(t=env.now + 1e-6, kind="node-crash",
                         node_index=crash_node_index)]))
        injector.set_target(cluster)
        record = yield injector.arm()
        cluster.teardown()  # power off the rest of the dead partition
        spare = Cluster(env, spec, n_nodes=n_nodes, rng=rng,
                        name=f"vrp-{seed}-spare")
        session2 = yield from dmtcp_restart(spare, ckpt, costs=costs)
        results = yield from session2.wait()
        return record, results

    with _maybe_monitored(analysis) as monitor:
        record, results = env.run(until=env.process(scenario()))

    counters = {key: sum(p.stats[key] for p in plugins)
                for key in ("reposted_sends", "reposted_recvs",
                            "replayed_modifies", "drained_completions")}
    evidence = [p.remap_evidence() for p in plugins]
    return {
        "crash": record,
        "results": results,
        "checksum": results[0].checksum,
        "counters": counters,
        "qps_remapped": bool(evidence) and all(
            e["qps_remapped"] for e in evidence),
        "mrs_remapped": bool(evidence) and all(
            e["mrs_remapped"] for e in evidence),
        "lids_remapped": bool(evidence) and all(
            e["lids_remapped"] for e in evidence),
        "protocol": monitor.summary() if monitor is not None else None,
    }
