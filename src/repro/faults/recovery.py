"""Coordinated checkpointing under chaos, and restart recovery.

Two mechanisms live here:

**ChaosGate** — the consistency protocol for checkpoints that must survive
a *crash* (not just a planned freeze).  A generator cannot be copied, so
an intent="resume" image's continuation keeps advancing after capture and
cannot be rewound; recovery instead re-runs the application factories
against the restored memory (see :mod:`.progress`).  For that to be
correct the image must be captured at an iteration-consistent global cut:
the gate raises a request flag, every rank folds its local view of the
flag into an OR-allreduce at the end of each iteration (so a flag raised
mid-round still produces one global verdict), and on a positive verdict
all ranks park at the end of the *same* iteration.  The checkpoint then
captures memory in which every rank's progress counter agrees.

**RecoveryManager** — the supervisor loop: launch the job, checkpoint it
through the gate on a fixed interval, and when the injector reports a
fatal failure, tear the generation down, back off exponentially, and
restart from the last checkpoint (:func:`chaos_restart`) on a fresh
cluster — new LIDs, new qp_nums, new pids, restored memory.  Repeated
failures without a new checkpoint eventually raise :class:`RecoveryError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Generator, List, Optional

from ..dmtcp.coordinator import Coordinator
from ..dmtcp.costs import CostModel, DEFAULT_COSTS
from ..dmtcp.image import CheckpointImage
from ..dmtcp.launcher import (
    AppSpec,
    CheckpointSet,
    DmtcpSession,
    JobTracker,
    dmtcp_launch,
)
from ..dmtcp.plugin import Plugin
from ..dmtcp.process import DmtcpProcess
from ..hardware.cluster import Cluster
from ..sim import Environment, Event
from .injector import Injector

__all__ = [
    "ChaosGate",
    "ChaosPlugin",
    "RecoveryConfig",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryOutcome",
    "TimelineEvent",
    "chaos_restart",
]


class RecoveryError(RuntimeError):
    """Recovery gave up (retry limit exhausted).  Carries the partial
    :class:`RecoveryOutcome` as ``.outcome``."""

    def __init__(self, message: str, outcome: "RecoveryOutcome"):
        super().__init__(message)
        self.outcome = outcome


class ChaosGate:
    """The iteration-boundary parking protocol (see module docstring)."""

    def __init__(self, env: Environment, world: int = 0):
        self.env = env
        self.world = world
        self.requested = False
        self._parked = 0
        self._all_parked: Optional[Event] = None
        self._release: Optional[Event] = None

    def reset(self) -> None:
        """Forget any in-flight request (failure cleanup / new generation)."""
        self.requested = False
        self._parked = 0
        self._all_parked = None
        self._release = None

    def request(self) -> Event:
        """Ask every rank to park at its next iteration boundary; returns
        the event that fires once all ``world`` ranks are parked."""
        self.requested = True
        self._parked = 0
        self._all_parked = self.env.event()
        self._release = self.env.event()
        return self._all_parked

    def park(self) -> Generator:
        """Called by each rank (via :func:`.progress.chaos_sync`) after a
        positive verdict: block until the supervisor releases the gate."""
        release = self._release
        if release is None:
            return  # stale verdict: the request was withdrawn
        self._parked += 1
        if self._parked >= self.world and not self._all_parked.triggered:
            self._all_parked.succeed()
        yield release

    def release(self) -> None:
        """Lower the flag and resume every parked rank."""
        self.requested = False
        release, self._release = self._release, None
        self._all_parked = None
        self._parked = 0
        if release is not None and not release.triggered:
            release.succeed()


class ChaosPlugin(Plugin):
    """Hands the gate to the application context at install time — before
    the app's first iteration, so every rank agrees the gate exists (the
    per-iteration allreduce must run on all ranks or none)."""

    name = "chaos-gate"

    def __init__(self, gate: ChaosGate):
        super().__init__()
        self.gate = gate

    def install(self, appctx) -> None:
        super().install(appctx)
        appctx.chaos_gate = self.gate


def _safe(gen: Generator) -> Generator:
    """Run ``gen``, converting exceptions into a ('error', exc) return so a
    supervised sub-flow's death never fails an unwatched process event."""
    try:
        value = yield from gen
        return ("ok", value)
    except Exception as exc:
        return ("error", exc)


def chaos_restart(cluster: Cluster, ckpt_set: CheckpointSet,
                  specs: List[AppSpec],
                  plugin_factory: Callable[[], list] = lambda: [],
                  costs: CostModel = DEFAULT_COSTS, gzip: bool = True,
                  disk_kind: str = "local", coord_node_index: int = 0,
                  tracker: Optional[JobTracker] = None,
                  generation: int = 1, incremental: bool = False,
                  ckpt_workers: int = 0, store=None) -> Generator:
    """Process generator: restart after a *crash* from a resume-intent
    checkpoint.

    Unlike :func:`~repro.dmtcp.launcher.dmtcp_restart` (which revives the
    frozen continuations of an intent="restart" freeze), the crashed job's
    generators are gone; this path stages the images to the new cluster,
    restores each image's memory into a fresh process, and re-runs the
    application factory — which must speak the :mod:`.progress` protocol to
    skip completed work.  Fresh plugins, fresh verbs resources, new real
    ids throughout.
    """
    from ..ibverbs import VerbsLib  # local import to avoid cycles

    env = cluster.env
    if store is not None:
        store.stage_from(ckpt_set)
    else:
        ckpt_set.stage_to(cluster, disk_kind)
    coordinator = Coordinator(cluster.nodes[coord_node_index],
                              expected_clients=len(ckpt_set.records))
    coordinator.store = store
    if tracker is not None:
        tracker.coordinator = coordinator
    spec_by_rank = {spec.rank: spec for spec in specs}
    procs_by_name = {}
    flows = []
    for record in ckpt_set.records:
        dst_index = record.node_index % len(cluster.nodes)
        node = cluster.nodes[dst_index]
        host = node.fork(record.name)
        host.libs["ibverbs"] = VerbsLib(host)

        def flow(record=record, host=host, node=node, dst_index=dst_index):
            if store is not None:
                image = yield from store.fetch_image(
                    record.name, epoch=record.epoch or None,
                    via_node_index=dst_index)
            else:
                disk = node.disk(disk_kind)
                data = yield from disk.read(record.path)
                image = CheckpointImage.from_bytes(data)
            image.restore_memory(host.memory)
            # mtcp_restart-equivalent bring-up before the app re-enters
            yield host.compute(seconds=costs.restart_base)
            proc = DmtcpProcess(host, record.name, record.rank,
                                len(ckpt_set.records), plugin_factory(),
                                costs=costs, gzip=gzip, disk_kind=disk_kind,
                                node_index=dst_index,
                                incremental=incremental,
                                ckpt_workers=ckpt_workers, store=store)
            proc.appctx.restarts = generation - 1
            if incremental:
                # seed the incremental chain: restore() bumped every
                # region's generation, so resync the image's per-region
                # bookkeeping to the restored state — the first post-crash
                # checkpoint can then skip whatever the app leaves clean
                for region in host.memory:
                    pm = image.region_meta.get(region.name)
                    if pm is not None:
                        pm["generation"] = region.generation
                proc.last_record = replace(record, image=image)
            procs_by_name[record.name] = proc
            spec = spec_by_rank[record.rank]
            yield from proc.launch(coordinator.node.name, coordinator.port,
                                   spec.factory)

        flows.append(env.process(flow(),
                                 name=f"chaos-restart.{record.name}"))
    if tracker is not None:
        tracker.procs.extend(flows)
    yield env.all_of(flows)
    procs = [procs_by_name[r.name] for r in ckpt_set.records]
    return DmtcpSession(env, cluster, coordinator, procs, costs)


@dataclass
class RecoveryConfig:
    """Knobs of the supervisor loop."""

    ckpt_interval: float             # seconds between coordinated ckpts
    disk_kind: str = "local"
    gzip: bool = True
    #: incremental capture: reuse the previous image's bytes/ratios for
    #: regions proven clean (DESIGN.md §8)
    incremental: bool = False
    #: compressor threads per process for dirty-region measurement
    ckpt_workers: int = 0
    #: land checkpoints in a content-addressed multi-tier store
    #: (``repro.store``) instead of monolithic per-process files; a fresh
    #: store is built per generation and re-staged from the last
    #: CheckpointSet, fully replicated
    use_store: bool = False
    #: overrides the per-generation store: called with the generation's
    #: cluster, returns the ``store=`` object for launch/restart.  The
    #: multi-tenant service hands out a fresh
    #: :class:`~repro.service.TenantStoreClient` here, so a supervised
    #: job checkpoints into the shared long-lived service instead of a
    #: private per-run store (implies ``use_store`` semantics)
    store_factory: Optional[Callable[[Cluster], Any]] = None
    #: consecutive failures *without a new checkpoint* before giving up
    max_attempts: int = 5
    backoff_base: float = 2.0        # first retry delay (seconds)
    backoff_factor: float = 2.0      # growth per consecutive failure
    backoff_max: float = 60.0
    #: relative jitter on each backoff delay (0.1 = ±10%), drawn from the
    #: manager's seeded ``faults/`` RNG stream so chaos runs with retries
    #: stay bit-identical across reruns; 0.0 keeps delays exact
    backoff_jitter: float = 0.0


@dataclass
class TimelineEvent:
    t: float
    kind: str      # launch/restart/checkpoint/failure/backoff/done/give-up
    detail: str


@dataclass
class RecoveryOutcome:
    """What a chaos run cost, and how it went."""

    results: List[Any] = field(default_factory=list)
    completion_seconds: float = 0.0
    generations: int = 0             # 1 = never failed
    n_checkpoints: int = 0
    n_failures: int = 0
    n_restarts: int = 0
    ckpt_overhead: float = 0.0       # total wall seconds inside checkpoints
    restart_overhead: float = 0.0    # total wall seconds restoring
    lost_work: float = 0.0           # work redone: failure minus last capture
    backoff_seconds: float = 0.0
    #: generations killed by a structured storage-quota overflow
    #: (surfaced as timeline kind="quota" with tier/tenant/byte detail)
    quota_failures: int = 0
    timeline: List[TimelineEvent] = field(default_factory=list)

    @property
    def mean_ckpt_seconds(self) -> float:
        return self.ckpt_overhead / max(1, self.n_checkpoints)


class RecoveryManager:
    """Supervises one job across failures (see module docstring).

    ``cluster_factory(tag)`` builds a fresh cluster per generation (fresh
    LID base, fresh ports — recovery never reuses a possibly-degraded
    partition); ``specs_for(cluster)`` rebuilds the AppSpecs against it
    (rank-0 placement and hostnames are cluster-specific).
    """

    #: opt-in lifecycle tracer (``repro.obs.trace``), installed class-wide
    #: by ``install_tracer``: every timeline mark (launch, restart,
    #: checkpoint, failure, backoff, done, give-up) also lands in the
    #: trace as a ``harness.<kind>`` record.
    tracer = None

    def __init__(self, env: Environment,
                 cluster_factory: Callable[[str], Cluster],
                 specs_for: Callable[[Cluster], List[AppSpec]],
                 config: RecoveryConfig,
                 costs: CostModel = DEFAULT_COSTS,
                 plugin_factory: Callable[[], list] = lambda: [],
                 injector: Optional[Injector] = None,
                 name: str = "chaos", rng=None):
        self.env = env
        self.cluster_factory = cluster_factory
        self.specs_for = specs_for
        self.config = config
        self.costs = costs
        self.plugin_factory = plugin_factory
        self.injector = injector
        self.name = name
        #: seeded RngFactory for the backoff jitter draws; with no rng (or
        #: backoff_jitter=0.0) every delay is exact and draw-free
        self.rng = rng
        self._backoff_stream = None
        self.gate = ChaosGate(env)

    # -- bookkeeping -----------------------------------------------------------

    def _mark(self, outcome: Optional[RecoveryOutcome], kind: str,
              detail: str) -> None:
        if outcome is not None:
            outcome.timeline.append(
                TimelineEvent(t=self.env.now, kind=kind, detail=detail))
        if self.tracer is not None:
            self.tracer.emit(f"harness.{kind}", self.name, self.env.now,
                             detail=detail)

    def _mark_error(self, outcome: Optional[RecoveryOutcome], where: str,
                    exc: BaseException) -> None:
        """Surface a generation-killing exception.  A structured
        :class:`~repro.hardware.storage.QuotaExceededError` gets its own
        timeline kind (``quota``) carrying tier name, requested/available
        bytes, and tenant — not a bare repr — so sweeps and reports can
        aggregate storage saturation separately from crashes."""
        from ..hardware.storage import QuotaExceededError
        if isinstance(exc, QuotaExceededError):
            if outcome is not None:
                outcome.quota_failures += 1
            who = f" tenant={exc.tenant}" if exc.tenant else ""
            self._mark(outcome, "quota",
                       f"{where}: tier={exc.fs_name}{who} "
                       f"requested={exc.requested:.0f} "
                       f"available={exc.available:.0f} "
                       f"capacity={exc.capacity:.0f}")
        else:
            self._mark(outcome, "failure", f"{where}: {exc!r}")

    def _backoff(self, consecutive_failures: int) -> float:
        """The k-th consecutive retry's delay: capped exponential, with
        optional relative jitter drawn from the reserved ``faults/`` RNG
        namespace — a named stream, so enabling jitter never perturbs the
        injector's (or anything else's) draws, and same-seed chaos runs
        with retries stay bit-identical."""
        cfg = self.config
        backoff = min(
            cfg.backoff_max,
            cfg.backoff_base
            * cfg.backoff_factor ** (consecutive_failures - 1))
        if cfg.backoff_jitter > 0.0 and self.rng is not None:
            if self._backoff_stream is None:
                self._backoff_stream = self.rng.fault_stream(
                    f"recovery/{self.name}/backoff")
            backoff *= 1.0 + cfg.backoff_jitter \
                * float(self._backoff_stream.uniform(-1.0, 1.0))
        return backoff

    def _plugins(self) -> list:
        return list(self.plugin_factory()) + [ChaosPlugin(self.gate)]

    # -- the supervisor loop -----------------------------------------------------

    def run(self) -> Generator:
        """Process generator: run the job to completion through failures;
        returns a :class:`RecoveryOutcome` (or raises RecoveryError)."""
        env = self.env
        cfg = self.config
        outcome = RecoveryOutcome()
        t_job_start = env.now
        ckpt_set: Optional[CheckpointSet] = None
        t_last_capture = env.now
        consecutive_failures = 0
        generation = 0

        while True:
            generation += 1
            outcome.generations = generation
            cluster = self.cluster_factory(f"g{generation}")
            specs = self.specs_for(cluster)
            self.gate.world = len(specs)
            self.gate.reset()
            store = None
            if cfg.store_factory is not None:
                # shared-service mode: the service outlives generations;
                # each one gets a fresh client (fresh epoch base), and
                # stage_from is an idempotent re-registration
                store = cfg.store_factory(cluster)
            elif cfg.use_store:
                # a fresh store per generation: the old cluster's tiers
                # died with it, and stage_from rebuilds every replica
                # from the surviving CheckpointSet
                from ..store import CheckpointStore
                store = CheckpointStore(cluster)
            tracker = JobTracker()
            fail_evt = self.injector.arm() if self.injector is not None \
                else env.event()
            if self.injector is not None:
                self.injector.set_target(cluster)

            t_gen_start = env.now
            if ckpt_set is None:
                self._mark(outcome, "launch", f"generation {generation}")
                launch_gen = dmtcp_launch(
                    cluster, specs, plugin_factory=self._plugins,
                    costs=self.costs, gzip=cfg.gzip,
                    disk_kind=cfg.disk_kind, tracker=tracker,
                    incremental=cfg.incremental,
                    ckpt_workers=cfg.ckpt_workers, store=store)
            else:
                self._mark(outcome, "restart",
                           f"generation {generation} from checkpoint at "
                           f"t={t_last_capture:.3f}")
                launch_gen = chaos_restart(
                    cluster, ckpt_set, specs, plugin_factory=self._plugins,
                    costs=self.costs, gzip=cfg.gzip,
                    disk_kind=cfg.disk_kind, tracker=tracker,
                    generation=generation, incremental=cfg.incremental,
                    ckpt_workers=cfg.ckpt_workers, store=store)
            launch_proc = env.process(
                _safe(launch_gen), name=f"{self.name}.up.g{generation}")

            session: Optional[DmtcpSession] = None
            status = None
            yield env.any_of([launch_proc, fail_evt])
            if fail_evt.triggered:
                status = "failed"
            elif launch_proc.value[0] == "error":
                status = "failed"
                self._mark_error(outcome, "bring-up error",
                                 launch_proc.value[1])
            else:
                session = launch_proc.value[1]
                if ckpt_set is not None:
                    outcome.n_restarts += 1
                    outcome.restart_overhead += env.now - t_gen_start

            if session is not None:
                done_evt = env.all_of(
                    [p.appctx.done for p in session.procs])
                while True:
                    timer = env.timeout(cfg.ckpt_interval)
                    yield env.any_of([timer, done_evt, fail_evt])
                    if fail_evt.triggered:
                        status = "failed"
                        break
                    if done_evt.triggered:
                        status = "done"
                        break
                    # interval expired: coordinated checkpoint through the
                    # gate, racing the next failure the whole way
                    all_parked = self.gate.request()
                    yield env.any_of([all_parked, done_evt, fail_evt])
                    if fail_evt.triggered:
                        status = "failed"
                        break
                    if done_evt.triggered and not all_parked.triggered:
                        self.gate.release()  # finished before parking
                        status = "done"
                        break
                    ckpt_proc = env.process(
                        _safe(session.checkpoint(intent="resume")),
                        name=f"{self.name}.ckpt")
                    yield env.any_of([ckpt_proc, fail_evt])
                    if not ckpt_proc.triggered:
                        ckpt_proc.kill()  # died mid-checkpoint
                        status = "failed"
                        break
                    ok, value = ckpt_proc.value
                    if ok == "error":
                        status = "failed"
                        self._mark_error(outcome, "checkpoint error", value)
                        break
                    ckpt_set = value
                    t_last_capture = env.now
                    consecutive_failures = 0
                    outcome.n_checkpoints += 1
                    outcome.ckpt_overhead += value.wall_seconds
                    self._mark(outcome, "checkpoint",
                               f"#{outcome.n_checkpoints} in "
                               f"{value.wall_seconds:.3f}s")
                    self.gate.release()
                    if fail_evt.triggered:
                        status = "failed"
                        break

            if status == "done":
                if self.injector is not None:
                    self.injector.clear_target()
                if store is not None:
                    store.stop()  # nothing left worth replicating
                tracker.kill_all()  # coordinator loops parked on recv
                outcome.results = [p.appctx.done.value
                                   for p in session.procs]
                outcome.completion_seconds = env.now - t_job_start
                self._mark(outcome, "done",
                           f"after {outcome.n_failures} failure(s), "
                           f"{outcome.n_restarts} restart(s)")
                return outcome

            # -- failure path ------------------------------------------------
            outcome.n_failures += 1
            consecutive_failures += 1
            if fail_evt.triggered:
                record = fail_evt.value
                self._mark(outcome, "failure",
                           f"{record.kind}: {record.detail}")
            lost = env.now - max(t_last_capture, t_gen_start)
            outcome.lost_work += lost
            if self.injector is not None:
                self.injector.clear_target()
            if store is not None:
                store.stop()  # replication flows target a dead cluster
            tracker.kill_all()
            cluster.teardown()
            self.gate.reset()
            if consecutive_failures > cfg.max_attempts:
                outcome.completion_seconds = env.now - t_job_start
                self._mark(outcome, "give-up",
                           f"{consecutive_failures} consecutive failures "
                           f"without a new checkpoint")
                raise RecoveryError(
                    f"recovery abandoned after {consecutive_failures} "
                    f"consecutive failures", outcome)
            backoff = self._backoff(consecutive_failures)
            outcome.backoff_seconds += backoff
            self._mark(outcome, "backoff", f"{backoff:.3g}s")
            yield env.timeout(backoff)

    # -- migration as a recovery action ----------------------------------------

    def supervise_migration(self, session: DmtcpSession,
                            target_factory: Callable[[str], Cluster],
                            mig_config=None,
                            node_map: Optional[dict] = None,
                            outcome: Optional[RecoveryOutcome] = None
                            ) -> Generator:
        """Process generator: drive a live pre-copy migration of
        ``session``, retrying with the supervisor's capped-exponential
        (optionally jittered) backoff when the move fails *before* the
        point of no return.

        :class:`~repro.migrate.MigrationError` is only ever raised while
        the source job is still running (target crashes are detected at
        round boundaries and re-checked immediately before the freeze),
        so each retry simply builds a fresh target cluster and pre-copies
        again — the dirty tracking starts over, the application never
        notices.  Returns the successful attempt's
        :class:`~repro.migrate.MigrationResult`."""
        from ..migrate import MigrationError, MigrationManager
        cfg = self.config
        attempt = 0
        while True:
            attempt += 1
            target = target_factory(f"m{attempt}")
            if self.injector is not None:
                self.injector.set_target(target)
            manager = MigrationManager(session, target, config=mig_config,
                                       node_map=node_map)
            flow = self.env.process(_safe(manager.migrate()),
                                    name=f"{self.name}.migrate.a{attempt}")
            status, value = yield flow
            if status == "ok":
                self._mark(outcome, "migrate",
                           f"attempt {attempt}: downtime "
                           f"{value.downtime_seconds:.3f}s")
                return value
            if not isinstance(value, MigrationError):
                raise value
            if self.injector is not None:
                self.injector.clear_target()
            target.teardown()
            if outcome is not None:
                outcome.n_failures += 1
            self._mark(outcome, "failure",
                       f"migration attempt {attempt}: {value}")
            if attempt > cfg.max_attempts:
                raise RecoveryError(
                    f"migration abandoned after {attempt} attempt(s)",
                    outcome if outcome is not None else RecoveryOutcome())
            backoff = self._backoff(attempt)
            if outcome is not None:
                outcome.backoff_seconds += backoff
            self._mark(outcome, "backoff", f"{backoff:.3g}s")
            yield self.env.timeout(backoff)
