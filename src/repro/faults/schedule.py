"""Failure-event schedules: when what breaks where.

A schedule is an iterator of :class:`FailureEvent` objects in
non-decreasing time order.  Stochastic schedules draw exclusively from the
reserved ``faults/`` namespace of :class:`~repro.sim.rng.RngFactory`
(per-node streams, derived by name) so enabling fault injection never
perturbs any other component's randomness and two same-seed chaos runs see
bit-identical failure times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..sim import RngFactory

__all__ = [
    "FailureEvent",
    "FailureSchedule",
    "FixedSchedule",
    "TraceSchedule",
    "PoissonSchedule",
]


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled failure."""

    t: float                 # absolute simulated time
    kind: str                # see models.FAILURE_KINDS
    node_index: int = 0      # victim (modulo cluster size at apply time)
    params: dict = field(default_factory=dict, compare=False)


class FailureSchedule:
    """Base: subclasses yield FailureEvents in time order."""

    def events(self) -> Iterator[FailureEvent]:
        raise NotImplementedError


class FixedSchedule(FailureSchedule):
    """An explicit list of events (deterministic scenarios, tests)."""

    def __init__(self, events: Iterable[FailureEvent]):
        self._events: List[FailureEvent] = sorted(
            events, key=lambda e: (e.t, e.node_index, e.kind))

    def events(self) -> Iterator[FailureEvent]:
        return iter(self._events)


class TraceSchedule(FixedSchedule):
    """Trace-driven injection from ``(t, kind, node_index[, params])`` rows
    — e.g. replaying a production cluster's failure log."""

    def __init__(self, rows: Iterable[tuple]):
        events = []
        for row in rows:
            t, kind, node_index = row[0], row[1], row[2]
            params = dict(row[3]) if len(row) > 3 else {}
            events.append(FailureEvent(t=float(t), kind=str(kind),
                                       node_index=int(node_index),
                                       params=params))
        super().__init__(events)


class PoissonSchedule(FailureSchedule):
    """Independent Poisson failures per node: exponential inter-arrival
    gaps with mean ``mtbf_node`` seconds, one stream per node, merged in
    time order.  The whole-job MTBF is ``mtbf_node / n_nodes``."""

    def __init__(self, rng: RngFactory, n_nodes: int, mtbf_node: float,
                 kind: str = "node-crash", horizon: Optional[float] = None,
                 params: Optional[dict] = None):
        if mtbf_node <= 0:
            raise ValueError(f"mtbf_node must be positive: {mtbf_node}")
        self.rng = rng
        self.n_nodes = n_nodes
        self.mtbf_node = float(mtbf_node)
        self.kind = kind
        self.horizon = horizon
        self.params = dict(params or {})

    def events(self) -> Iterator[FailureEvent]:
        streams: Dict[int, object] = {
            i: self.rng.fault_stream(f"poisson/node{i}")
            for i in range(self.n_nodes)
        }
        heap = [(float(streams[i].exponential(self.mtbf_node)), i)
                for i in range(self.n_nodes)]
        heapq.heapify(heap)
        while heap:
            t, i = heapq.heappop(heap)
            if self.horizon is not None and t > self.horizon:
                continue  # this node's arrivals are past the horizon
            yield FailureEvent(t=t, kind=self.kind, node_index=i,
                               params=dict(self.params))
            heapq.heappush(
                heap, (t + float(streams[i].exponential(self.mtbf_node)), i))
