"""The progress protocol resumable applications speak.

A Python generator cannot be copied, so an intent="resume" checkpoint
cannot be rewound by re-entering its old continuation — after a *crash*
(as opposed to a planned freeze) the only durable state is the checkpoint
image's memory.  Chaos recovery therefore re-runs the application factory
against the restored address space, and the application itself must be
*resumable*: it keeps an iteration counter (plus any loop-carried scalars)
in a small named memory region that rides inside every checkpoint image,
skips initialisation and completed iterations when the counter is nonzero,
and parks at a coordinated iteration boundary when a checkpoint is
requested so the captured cut is globally consistent.

This module has no dependency on the rest of the faults subsystem: the
gate object is duck-typed (``requested`` flag + ``park()`` generator) and
reaches the application lazily via ``ctx.chaos_gate``, so applications that
import this run byte-identically when no chaos harness is attached.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..memory.address_space import MemoryError_

__all__ = ["ChaosProgress", "chaos_sync"]

_MAGIC = 0x43484153  # "CHAS"
_REGION_BYTES = 64   # 2 int64 header words + 6 float64 scalar slots
_N_SCALARS = 6


class ChaosProgress:
    """An iteration counter (and a few scalar slots) living in process
    memory, so it is captured by — and restored from — checkpoint images."""

    def __init__(self, region):
        self.region = region
        self._words = region.view(dtype=np.int64).subview(slice(0, 2))
        self._scalars = region.view(dtype=np.float64).subview(
            slice(2, 2 + _N_SCALARS))

    @classmethod
    def attach(cls, ctx) -> "ChaosProgress":
        """Map (first run) or adopt (restored image) the progress region."""
        name = f"{ctx.name}.chaos.progress"
        try:
            region = ctx.memory.region(name)
        except MemoryError_:
            region = ctx.memory.mmap(name, _REGION_BYTES, tag="chaos")
        progress = cls(region)
        if progress._words[0] != _MAGIC:
            progress._words[0] = _MAGIC
            progress._words[1] = 0
            progress._scalars[:] = 0.0
        return progress

    @property
    def next_iter(self) -> int:
        """The first iteration that has NOT completed (0 on a fresh run)."""
        return int(self._words[1])

    def mark(self, completed_through: int) -> None:
        """Record that iterations [0, completed_through) are done.  Call at
        the end of each iteration, *before* :func:`chaos_sync`, so a
        checkpoint taken at the park point restores to the next iteration."""
        self._words[1] = completed_through

    def get_scalar(self, slot: int) -> float:
        """Read a loop-carried scalar (e.g. FT's running checksum)."""
        return float(self._scalars[slot])

    def set_scalar(self, slot: int, value: float) -> None:
        self._scalars[slot] = value


def chaos_sync(ctx, comm) -> Generator:
    """End-of-iteration checkpoint window (no-op without a chaos gate).

    Every rank contributes its local view of the gate's request flag to an
    OR-allreduce, so even a flag raised midway through the round yields the
    same verdict on every rank; on a positive verdict all ranks park at the
    end of the *same* iteration, giving the checkpoint an
    iteration-consistent global cut.
    """
    gate = getattr(ctx, "chaos_gate", None)
    if gate is None:
        return
    flag = 1 if gate.requested else 0
    verdict = yield from comm.allreduce_obj(flag, lambda a, b: a | b)
    if verdict:
        yield from gate.park()
