"""Fault injection and chaos-driven recovery.

The missing half of the fault-tolerance story: the rest of the package
checkpoints healthy runs; this subsystem kills nodes, wedges HCAs, degrades
links and slows cores on a seeded schedule, detects the resulting job
failures, and drives recovery from the last checkpoint via the DMTCP
coordinator/launcher path — so the restart machinery (Principles 3-6) is
exercised under the conditions it exists for.

Modules:

* :mod:`.schedule` — failure-event distributions (fixed, trace, Poisson
  per-node MTBF), all drawing from the reserved ``faults/`` RNG namespace;
* :mod:`.models` — what each failure kind does to the hardware;
* :mod:`.injector` — the scheduler process that applies events and
  notifies waiters;
* :mod:`.progress` — the in-image iteration-progress protocol resumable
  applications speak;
* :mod:`.recovery` — the coordinated-checkpoint gate and the
  RecoveryManager retry/backoff loop;
* :mod:`.harness` — end-to-end chaos runs of NAS kernels, restart-path
  verification, and the Young/Daly optimal-interval math (imported
  separately: ``repro.faults.harness``).
"""

from .injector import FailureRecord, Injector
from .models import FATAL_KINDS, apply_failure
from .progress import ChaosProgress, chaos_sync
from .recovery import (
    ChaosGate,
    ChaosPlugin,
    RecoveryConfig,
    RecoveryError,
    RecoveryManager,
    RecoveryOutcome,
    chaos_restart,
)
from .schedule import (
    FailureEvent,
    FixedSchedule,
    PoissonSchedule,
    TraceSchedule,
)

__all__ = [
    "ChaosGate",
    "ChaosPlugin",
    "ChaosProgress",
    "FATAL_KINDS",
    "FailureEvent",
    "FailureRecord",
    "FixedSchedule",
    "Injector",
    "PoissonSchedule",
    "RecoveryConfig",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryOutcome",
    "TraceSchedule",
    "apply_failure",
    "chaos_restart",
    "chaos_sync",
]
