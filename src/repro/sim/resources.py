"""Waitable resources built on the DES kernel.

``Store`` is the FIFO message channel used for every queue in the system
(fabric ports, TCP socket buffers, coordinator mailboxes).  ``Resource``
models mutual-exclusion with queuing (disk heads, NIC DMA engines).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Store", "Resource"]


class Store:
    """An unbounded (or capacity-bounded) FIFO channel of Python objects."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Return an event that triggers once ``item`` is in the store."""
        event = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._service_getters()
        else:
            self._putters.append((event, item))
        return event

    def put_many(self, items) -> Event:
        """Feed a whole batch through the channel with one wakeup pass.

        Returns an event that triggers once every item is in the store.
        On an unbounded store (the fabric/coordinator default) the batch
        is appended in one go and waiting getters are serviced in a
        single pass — one event instead of one per item.  Delivery order
        is exactly that of sequential :meth:`put` calls.  Bounded stores
        fall back to sequential puts (per-item events are needed to park
        overflow fairly behind existing putters)."""
        items = list(items)
        if not items:
            event = Event(self.env)
            event.succeed()
            return event
        if self.capacity == float("inf"):
            event = Event(self.env)
            self.items.extend(items)
            event.succeed()
            self._service_getters()
            return event
        for item in items:
            event = self.put(item)
        return event

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = Event(self.env)
        self._getters.append(event)
        self._service_getters()
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty (does not wake putters
        waiting on capacity — use get() on bounded stores)."""
        if self.items:
            item = self.items.popleft()
            self._service_putters()
            return item
        return None

    def _service_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter.triggered:  # cancelled by interrupt
                continue
            getter.succeed(self.items.popleft())
            self._service_putters()

    def _service_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            if event.triggered:
                continue
            self.items.append(item)
            event.succeed()
            self._service_getters()


class Resource:
    """A counted resource with FIFO queuing.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        event = Event(self.env)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release without matching request")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue
            waiter.succeed()
            return
        self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)
