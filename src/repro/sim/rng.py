"""Deterministic per-component random streams.

Every simulated component (an HCA's id allocator, the fabric's jitter model,
a NAS kernel's data generator) draws from its own named stream derived from
a single root seed, so whole-cluster simulations are reproducible and the
streams are independent of each other and of call ordering elsewhere.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Derives independent ``numpy.random.Generator`` streams by name."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)

    def stream(self, name: str) -> np.random.Generator:
        digest = hashlib.sha256(
            f"{self.root_seed}:{name}".encode()).digest()
        seed = int.from_bytes(digest[:8], "little")
        return np.random.default_rng(seed)

    def child(self, name: str) -> "RngFactory":
        digest = hashlib.sha256(
            f"{self.root_seed}:{name}:child".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "little"))

    def fault_stream(self, name: str) -> np.random.Generator:
        """A stream in the reserved ``faults/`` namespace.

        The fault injector draws exclusively from here; because streams are
        derived by name (not by draw order), enabling fault injection can
        never perturb any other component's randomness — a faults-off run
        is bit-identical whether or not the faults subsystem is loaded.
        """
        return self.stream(f"faults/{name}")
