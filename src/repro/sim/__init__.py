"""Discrete-event simulation kernel (the clock for the whole substrate)."""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Resource, Store
from .rng import RngFactory

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngFactory",
    "SimulationError",
    "Store",
    "Timeout",
]
