"""Discrete-event simulation kernel (the clock for the whole substrate)."""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    ReferenceEnvironment,
    SimStats,
    SimulationError,
    Timeout,
)
from .resources import Resource, Store
from .rng import RngFactory

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "ReferenceEnvironment",
    "Resource",
    "RngFactory",
    "SimStats",
    "SimulationError",
    "Store",
    "Timeout",
]
