"""Sharded content-addressed chunk index for the checkpoint service.

The per-run :class:`~repro.store.CheckpointStore` resolves "is this
chunk already stored?" with a single ``fs.exists`` — fine for one job,
but a shared service takes concurrent puts from hundreds of jobs, and a
single global critical section around the exists/write pair would
serialize the whole fleet.  :class:`ShardedChunkIndex` partitions the
digest space into ``n_shards`` shards, each with its own simulated lock
(:class:`~repro.sim.Resource`) and counters.  Two puts whose chunks hash
into different shards proceed fully in parallel; two puts racing on the
*same* digest serialize on one shard and the loser sees the winner's
chunk already present (a dedup hit instead of a double write).

Shards are picked from the first 8 bytes of the blake2b digest, so the
map is uniform, stateless, and identical across runs — determinism
comes for free from the content addresses themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List

from ..sim import Environment, Resource

__all__ = ["ShardedChunkIndex", "ShardStats"]


@dataclass
class ShardStats:
    """Per-shard load counters (the shard-balance evidence)."""

    chunks: int = 0           # distinct digests currently indexed
    bytes_logical: float = 0.0
    new: int = 0              # chunk writes this shard admitted
    dedup_hits: int = 0       # puts resolved without a write
    acquisitions: int = 0     # lock acquisitions
    wait_seconds: float = 0.0  # sim seconds puts spent queued on the lock


class _Shard:
    __slots__ = ("lock", "stats", "digests")

    def __init__(self, env: Environment):
        self.lock = Resource(env, capacity=1)
        self.stats = ShardStats()
        self.digests: set = set()


class ShardedChunkIndex:
    """Digest → shard map with per-shard locks and occupancy stats."""

    def __init__(self, env: Environment, n_shards: int = 16):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.env = env
        self.n_shards = int(n_shards)
        self._shards = [_Shard(env) for _ in range(self.n_shards)]

    def shard_of(self, digest: bytes) -> int:
        return int.from_bytes(digest[:8], "big") % self.n_shards

    def acquire(self, shard_id: int) -> Generator:
        """Process generator: take ``shard_id``'s lock (FIFO), counting
        queueing time against the shard.

        Kill-safe: the service outlives any one job, so a put killed
        while queued here (node failure, preemption teardown) must not
        leak its claim — on ``GeneratorExit`` a granted slot is released
        and a still-queued request is cancelled (``release`` skips
        triggered waiters)."""
        shard = self._shards[shard_id]
        t0 = self.env.now
        req = shard.lock.request()
        if not req.triggered:
            try:
                yield req
            except GeneratorExit:
                if req.triggered:
                    shard.lock.release()
                else:
                    req.succeed()  # cancel our queued claim
                raise
        shard.stats.acquisitions += 1
        shard.stats.wait_seconds += self.env.now - t0

    def release(self, shard_id: int) -> None:
        self._shards[shard_id].lock.release()

    def note_new(self, shard_id: int, digest: bytes,
                 logical_bytes: float) -> None:
        shard = self._shards[shard_id]
        if digest not in shard.digests:
            shard.digests.add(digest)
            shard.stats.chunks += 1
            shard.stats.bytes_logical += logical_bytes
        shard.stats.new += 1

    def note_dedup(self, shard_id: int) -> None:
        self._shards[shard_id].stats.dedup_hits += 1

    def discard(self, digest: bytes, logical_bytes: float = 0.0) -> None:
        """GC deleted the last replica of ``digest``."""
        shard = self._shards[self.shard_of(digest)]
        if digest in shard.digests:
            shard.digests.discard(digest)
            shard.stats.chunks -= 1
            shard.stats.bytes_logical = max(
                0.0, shard.stats.bytes_logical - logical_bytes)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._shards[self.shard_of(digest)].digests

    @property
    def shard_stats(self) -> List[ShardStats]:
        return [s.stats for s in self._shards]

    def summary(self) -> Dict[str, float]:
        """Aggregate + balance picture for reports and benchmarks."""
        counts = [s.stats.chunks for s in self._shards]
        total = sum(counts)
        mean = total / self.n_shards if self.n_shards else 0.0
        return {
            "shards": self.n_shards,
            "chunks": total,
            "new": sum(s.stats.new for s in self._shards),
            "dedup_hits": sum(s.stats.dedup_hits for s in self._shards),
            "bytes_logical": sum(s.stats.bytes_logical
                                 for s in self._shards),
            "max_shard_chunks": max(counts) if counts else 0,
            "mean_shard_chunks": mean,
            "lock_wait_seconds": sum(s.stats.wait_seconds
                                     for s in self._shards),
        }
