"""A gang scheduler driving a Poisson stream of jobs at the service.

:class:`GangScheduler` is the "hundreds of jobs" driver: jobs arrive on
a seeded Poisson stream, queue FIFO for a fixed pool of node slots, and
each grant launches a *real* workload (LU / FT / ML / ping-pong)
through ``dmtcp_launch`` on a fresh per-job cluster with ``store=``
pointed at the shared :class:`~.service.CheckpointService`.  Granted
jobs checkpoint on their own interval; when the queue backs up past the
quantum, the scheduler preempts the longest-running preemptible job
**via the checkpoint mechanism itself**:

    ``service.preempt`` B → ``session.checkpoint(intent="restart")``
    (the gang quiesces and freezes, ``service.quiesce``) → teardown and
    slot release (``service.reclaim``) → ``service.preempt`` E

On re-grant the job revives through ``dmtcp_restart`` from the frozen
continuations — bit-identical to a never-preempted run (the acceptance
gate ``bench_service.py`` enforces).  The quiesce-before-reclaim order
is a trace invariant (:mod:`repro.obs.invariants`).

Everything is deterministic under a fixed seed: arrivals come from a
named :class:`~repro.sim.RngFactory` stream, queueing is FIFO, and
victim selection is by (start time, name) — same seed, same completion
order, same checksums.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, List, Optional, Sequence

import numpy as np

from ..apps.ml import ml_app
from ..apps.nas import ft_app, lu_app
from ..core import InfinibandPlugin
from ..dmtcp.costs import CostModel, DEFAULT_COSTS
from ..dmtcp.launcher import JobTracker, dmtcp_launch, dmtcp_restart
from ..faults.progress import ChaosProgress, chaos_sync
from ..faults.recovery import ChaosGate, ChaosPlugin
from ..apps.nas.common import NasResult, alloc_scaled
from ..hardware.cluster import BUFFALO_CCR, MGHPCC, Cluster, HardwareSpec
from ..mpi import make_mpi_specs
from ..sim import Environment, RngFactory
from ..store.store import StoreConfig
from .service import CheckpointService

__all__ = ["GangScheduler", "JobOutcome", "ServiceJob", "WORKLOADS",
           "job_mix", "poisson_arrivals", "pingpong_mpi_app",
           "service_scenario"]

TAG_PP = 95


def pingpong_mpi_app(ctx, comm, klass: str = "S",
                     iters_sim: int = 0) -> Generator:
    """The OFED-style latency pair as an MPI workload: even ranks volley
    with their odd neighbour.  Tiny state, short runtime — the light end
    of the service's workload mix.  Speaks the progress protocol like
    the other kernels."""
    iters = iters_sim or 8
    progress = ChaosProgress.attach(ctx)
    start = progress.next_iter
    buf = alloc_scaled(ctx, f"{ctx.name}.pp.buf", float(1 << 20))
    v = buf.view(dtype=np.float64)
    if start == 0:
        v[:] = np.arange(len(v), dtype=np.float64) * (1.0 + comm.rank)
    peer = comm.rank ^ 1
    if peer >= comm.size:
        peer = None
    half = (len(v) // 2) * 8
    for _it in range(start, iters):
        if peer is not None:
            if comm.rank % 2 == 0:
                yield comm.isend(buf, 0, half, dest=peer, tag=TAG_PP)
                yield comm.irecv(buf, half, half, source=peer,
                                 tag=TAG_PP + 1)
            else:
                yield comm.irecv(buf, half, half, source=peer, tag=TAG_PP)
                yield comm.isend(buf, 0, half, dest=peer, tag=TAG_PP + 1)
        yield ctx.compute(seconds=5e-4)
        v[0] = (v[0] * 1.000001 + _it) % 97.0
        progress.mark(_it + 1)
        yield from chaos_sync(ctx, comm)
    checksum = yield from comm.allreduce_obj(float(np.abs(v).sum()),
                                             lambda a, b: a + b)
    return NasResult(benchmark="PP", klass=klass, rank=comm.rank,
                     nprocs=comm.size, t_init=0.0, loop_seconds=0.0,
                     iters_sim=iters, iterations=iters, checksum=checksum)


#: the workload shapes the service mixes (ISSUE: LU/FT/pingpong + ML)
WORKLOADS = {
    "lu": lu_app,
    "ft": ft_app,
    "ml": ml_app,
    "pingpong": pingpong_mpi_app,
}


@dataclass
class ServiceJob:
    """One gang-scheduled job in the arrival stream."""

    name: str
    tenant: str
    workload: str = "lu"        # key into WORKLOADS
    klass: str = "A"
    nprocs: int = 2
    ppn: int = 1
    iters_sim: int = 2
    arrival: float = 0.0        # sim seconds
    ckpt_interval: float = 0.0  # 0 = no interval checkpoints
    gzip: bool = True
    incremental: bool = True
    #: quota-capped tenants' jobs must not be preempted — a rejected
    #: preemption checkpoint would leave nothing to restart from
    preemptible: bool = True

    @property
    def n_nodes(self) -> int:
        return -(-self.nprocs // self.ppn)


@dataclass
class JobOutcome:
    """How one job went through the service."""

    name: str
    tenant: str
    workload: str
    klass: str
    nprocs: int
    arrival: float
    t_started: float = 0.0
    t_done: float = 0.0
    wait_seconds: float = 0.0   # total time spent queued (incl. re-queues)
    checksum: float = 0.0
    n_checkpoints: int = 0
    n_preemptions: int = 0
    rejected_puts: int = 0
    ok: bool = True
    error: str = ""


def poisson_arrivals(rng: RngFactory, n_jobs: int,
                     mean_interarrival: float,
                     name: str = "service/arrivals") -> List[float]:
    """Seeded Poisson arrival times (cumulative exponential gaps)."""
    gaps = rng.stream(name).exponential(mean_interarrival, size=n_jobs)
    return [float(t) for t in np.cumsum(gaps)]


def job_mix(rng: RngFactory, n_jobs: int, tenants: Sequence[str],
            mean_interarrival: float = 1.0,
            shapes: Sequence[tuple] = (("ml", "S"), ("lu", "A"),
                                       ("pingpong", "S")),
            nprocs: int = 2, iters_sim: int = 2,
            ckpt_interval: float = 1.0,
            non_preemptible_tenants: Sequence[str] = ()
            ) -> List[ServiceJob]:
    """A deterministic mixed-shape job stream: workloads and tenants
    cycle round-robin over the seeded arrival times."""
    arrivals = poisson_arrivals(rng, n_jobs, mean_interarrival)
    jobs = []
    for i, arrival in enumerate(arrivals):
        workload, klass = shapes[i % len(shapes)]
        tenant = tenants[i % len(tenants)]
        jobs.append(ServiceJob(
            name=f"job{i:03d}", tenant=tenant, workload=workload,
            klass=klass, nprocs=nprocs, iters_sim=iters_sim,
            arrival=arrival, ckpt_interval=ckpt_interval,
            preemptible=tenant not in tuple(non_preemptible_tenants)))
    return jobs


def _safe(gen: Generator) -> Generator:
    try:
        value = yield from gen
        return ("ok", value)
    except Exception as exc:
        return ("error", exc)


class _JobRun:
    """Scheduler-internal state for one job across grants."""

    __slots__ = ("job", "outcome", "ckpt_set", "preempt", "grant",
                 "t_granted", "t_enqueued", "started", "preempting",
                 "gate")

    def __init__(self, job: ServiceJob, t_enqueued: float):
        self.job = job
        self.outcome = JobOutcome(
            name=job.name, tenant=job.tenant, workload=job.workload,
            klass=job.klass, nprocs=job.nprocs, arrival=job.arrival)
        self.ckpt_set = None
        self.preempt = None
        self.grant = None
        self.t_granted = 0.0
        self.t_enqueued = t_enqueued
        self.started = False
        self.preempting = False
        self.gate = None


class GangScheduler:
    """FIFO gang scheduling over a node-slot pool (see module docstring)."""

    #: opt-in lifecycle tracer, installed class-wide by
    #: ``repro.obs.trace.install_tracer``
    tracer = None

    def __init__(self, env: Environment, service: CheckpointService,
                 rng: RngFactory,
                 spec: HardwareSpec = BUFFALO_CCR,
                 total_nodes: int = 8,
                 quantum: Optional[float] = None,
                 costs: CostModel = DEFAULT_COSTS):
        self.env = env
        self.service = service
        self.rng = rng
        self.spec = spec
        self.total_nodes = int(total_nodes)
        #: minimum granted runtime before a job becomes a preemption
        #: victim; None disables preemption entirely
        self.quantum = quantum
        self.costs = costs
        self._free = self.total_nodes
        self._queue: Deque[_JobRun] = deque()
        self._running: Dict[str, _JobRun] = {}
        self._completed: List[JobOutcome] = []
        self._wake = None
        self._n_jobs = 0
        self._cluster_seq = 0

    # -- plumbing -------------------------------------------------------------

    def _wake_up(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _app_for(self, job: ServiceJob):
        fn = WORKLOADS[job.workload]

        def app(ctx, comm):
            return fn(ctx, comm, klass=job.klass, iters_sim=job.iters_sim)

        return app

    def _emit(self, kind: str, who: str, **attrs) -> None:
        if self.tracer is not None:
            self.tracer.emit(kind, who, self.env.now, **attrs)

    # -- the scheduling loop ---------------------------------------------------

    def run(self, jobs: Sequence[ServiceJob]) -> Generator:
        """Process generator: feed ``jobs`` through the slot pool; returns
        the :class:`JobOutcome` list **in completion order** (the
        fixed-seed determinism witness)."""
        env = self.env
        jobs = sorted(jobs, key=lambda j: (j.arrival, j.name))
        for job in jobs:
            if job.n_nodes > self.total_nodes:
                raise ValueError(f"{job.name}: needs {job.n_nodes} nodes, "
                                 f"pool has {self.total_nodes}")
        self._n_jobs = len(jobs)

        def feeder() -> Generator:
            for job in jobs:
                delay = job.arrival - env.now
                if delay > 0:
                    yield env.timeout(delay)
                run = _JobRun(job, env.now)
                self._queue.append(run)
                self._emit("service.arrive", job.name, job=job.name,
                           tenant=job.tenant, workload=job.workload,
                           nodes=job.n_nodes)
                self._wake_up()

        env.process(feeder(), name="service.sched.arrivals")
        while len(self._completed) < self._n_jobs:
            self._dispatch()
            self._maybe_preempt()
            self._wake = env.event()
            yield self._wake
        return list(self._completed)

    def _dispatch(self) -> None:
        """Grant the queue head while it fits (FIFO gang scheduling —
        honest head-of-line blocking, no backfilling)."""
        while self._queue and self._queue[0].job.n_nodes <= self._free:
            run = self._queue.popleft()
            job = run.job
            self._free -= job.n_nodes
            run.t_granted = self.env.now
            run.outcome.wait_seconds += self.env.now - run.t_enqueued
            self._running[job.name] = run
            self._emit("service.grant", job.name, job=job.name,
                       tenant=job.tenant, nodes=job.n_nodes,
                       restart=run.started)
            if not run.started:
                run.started = True
                run.outcome.t_started = self.env.now
                self.env.process(_safe(self._run_job(run)),
                                 name=f"service.sched.{job.name}")
            else:
                grant, run.grant = run.grant, None
                grant.succeed()

    def _maybe_preempt(self) -> None:
        """Queue backed up and the head doesn't fit: preempt the oldest
        preemptible job that has held its gang past the quantum."""
        if self.quantum is None or not self._queue:
            return
        head = self._queue[0]
        if head.job.n_nodes <= self._free:
            return
        victims = [run for run in self._running.values()
                   if run.job.preemptible and not run.preempting
                   and self.env.now - run.t_granted >= self.quantum]
        victims.sort(key=lambda r: (r.t_granted, r.job.name))
        for victim in victims:
            if self._free + victim.job.n_nodes >= head.job.n_nodes:
                victim.preempting = True
                if victim.preempt is not None \
                        and not victim.preempt.triggered:
                    victim.preempt.succeed()
                return

    # -- one job's lifecycle ---------------------------------------------------

    def _run_job(self, run: _JobRun) -> Generator:
        env = self.env
        job = run.job
        tracer = self.tracer
        generation = 0
        while True:
            generation += 1
            self._cluster_seq += 1
            cluster = Cluster(env, self.spec, n_nodes=job.n_nodes,
                              rng=self.rng,
                              name=f"svc.{job.name}.g{generation}")
            client = self.service.client(job.tenant, job.name)
            tracker = JobTracker()
            run.preempt = env.event()
            run.preempting = False
            # checkpoints happen only at ChaosGate park points: a freeze
            # during the TCP wire-up (PLM registration, lazy QP id
            # exchange) is not restartable — raw sockets are not in the
            # image — so every cut waits for the ranks to park at an
            # iteration boundary, exactly like RecoveryManager
            if run.gate is None:
                run.gate = ChaosGate(env, world=job.nprocs)
            gate = run.gate
            specs = make_mpi_specs(cluster, job.nprocs,
                                   self._app_for(job), ppn=job.ppn,
                                   name_prefix=job.name)
            if run.ckpt_set is None:
                gate.reset()
                launch_gen = dmtcp_launch(
                    cluster, specs,
                    plugin_factory=lambda: [
                        InfinibandPlugin(costs=self.costs),
                        ChaosPlugin(gate)],
                    costs=self.costs, gzip=job.gzip, tracker=tracker,
                    incremental=job.incremental, store=client)
            else:
                launch_gen = dmtcp_restart(
                    cluster, run.ckpt_set, costs=self.costs,
                    tracker=tracker, incremental=job.incremental,
                    store=client, stage_images=False)
            launch = env.process(_safe(launch_gen),
                                 name=f"service.up.{job.name}.g{generation}")
            yield launch
            status, value = launch.value
            if status == "error":
                self._finish(run, cluster, tracker, ok=False,
                             error=f"bring-up: {value!r}")
                return run.outcome
            session = value
            if run.ckpt_set is not None:
                # the revived ranks resume inside gate.park() from the
                # preemption cut; lower the flag to let them run
                gate.release()

            done_evt = env.all_of([p.appctx.done for p in session.procs])
            preempted = False
            while True:
                waits = [done_evt, run.preempt]
                timer = None
                if job.ckpt_interval > 0:
                    timer = env.timeout(job.ckpt_interval)
                    waits.append(timer)
                yield env.any_of(waits)
                if done_evt.triggered:
                    break
                # interval expired or preemption requested: either way the
                # next step is an iteration-consistent parked cut
                all_parked = gate.request()
                yield env.any_of([all_parked, done_evt])
                if done_evt.triggered and not all_parked.triggered:
                    gate.release()  # finished before parking
                    break
                if run.preempt.triggered:
                    preempted = True  # gate stays up: freeze while parked
                    break
                ckpt = env.process(
                    _safe(session.checkpoint(intent="resume")),
                    name=f"service.ckpt.{job.name}")
                yield ckpt
                ok, cval = ckpt.value
                if ok == "error":
                    gate.release()
                    self._finish(run, cluster, tracker, ok=False,
                                 error=f"checkpoint: {cval!r}")
                    return run.outcome
                run.outcome.n_checkpoints += 1
                gate.release()

            if not preempted:
                results = [p.appctx.done.value for p in session.procs]
                run.outcome.checksum = float(results[0].checksum)
                self._finish(run, cluster, tracker, ok=True)
                return run.outcome

            # -- preemption via checkpoint (the protocol the
            # preempt-quiesce-before-reclaim invariant watches) ------------
            span = None if tracer is None else tracer.begin(
                "service.preempt", job.name, env.now, job=job.name,
                tenant=job.tenant, generation=generation)
            ckpt = env.process(
                _safe(session.checkpoint(intent="restart")),
                name=f"service.preempt.{job.name}")
            yield ckpt
            ok, cval = ckpt.value
            if ok == "error":
                if tracer is not None:
                    tracer.end(span, env.now, ok=False)
                self._finish(run, cluster, tracker, ok=False,
                             error=f"preempt-ckpt: {cval!r}")
                return run.outcome
            run.ckpt_set = cval
            run.outcome.n_preemptions += 1
            run.outcome.n_checkpoints += 1
            self._emit("service.quiesce", job.name, job=job.name,
                       ranks=len(session.procs))
            tracker.kill_all()
            cluster.teardown()
            self._free += job.n_nodes
            del self._running[job.name]
            self._emit("service.reclaim", job.name, job=job.name,
                       nodes=job.n_nodes)
            if tracer is not None:
                tracer.end(span, env.now, ok=True)
            # back of the queue; wait for the re-grant
            run.grant = env.event()
            run.t_enqueued = env.now
            self._queue.append(run)
            self._wake_up()
            yield run.grant

    def _finish(self, run: _JobRun, cluster: Cluster,
                tracker: JobTracker, ok: bool, error: str = "") -> None:
        tracker.kill_all()
        cluster.teardown()
        self._free += run.job.n_nodes
        self._running.pop(run.job.name, None)
        run.outcome.ok = ok
        run.outcome.error = error
        run.outcome.t_done = self.env.now
        run.outcome.rejected_puts = \
            self.service.admission.job_rejections.get(run.job.name, 0)
        self._completed.append(run.outcome)
        self._emit("service.done", run.job.name, job=run.job.name,
                   tenant=run.job.tenant, ok=ok,
                   preemptions=run.outcome.n_preemptions)
        self._wake_up()


def service_scenario(seed: int = 2014, n_jobs: int = 6,
                     total_nodes: int = 4,
                     quantum: Optional[float] = None,
                     tenants: Sequence[str] = ("acme", "umass"),
                     quotas: Optional[Dict[str, float]] = None,
                     mean_interarrival: float = 0.5,
                     nprocs: int = 2, iters_sim: int = 2,
                     ckpt_interval: float = 1.0,
                     shapes: Sequence[tuple] = (("ml", "S"), ("lu", "A"),
                                                ("pingpong", "S")),
                     n_shards: int = 8,
                     max_inflight_bytes: Optional[float] = None,
                     service_nodes: int = 2,
                     spec: HardwareSpec = BUFFALO_CCR,
                     retention: int = 2,
                     non_preemptible_tenants: Sequence[str] = ()
                     ) -> Dict[str, object]:
    """One self-contained service run: shared :class:`CheckpointService`
    on its own MGHPCC-shaped cluster, a :class:`GangScheduler` over
    ``total_nodes`` slots, and a seeded ``job_mix`` arrival stream.  The
    entry point ``repro.obs report --service``, ``bench_service.py``,
    and the tests all drive.

    Fully deterministic under ``seed``: same completion order, same
    checksums, same ledger.
    """
    env = Environment()
    rng = RngFactory(seed)
    svc_cluster = Cluster(env, MGHPCC, n_nodes=service_nodes, rng=rng,
                          name="svcstore")
    service = CheckpointService(
        svc_cluster, config=StoreConfig(retention=retention),
        n_shards=n_shards, quotas=quotas,
        max_inflight_bytes=max_inflight_bytes)
    sched = GangScheduler(env, service, rng, spec=spec,
                          total_nodes=total_nodes, quantum=quantum)
    jobs = job_mix(rng, n_jobs, tenants,
                   mean_interarrival=mean_interarrival, shapes=shapes,
                   nprocs=nprocs, iters_sim=iters_sim,
                   ckpt_interval=ckpt_interval,
                   non_preemptible_tenants=non_preemptible_tenants)

    def main() -> Generator:
        outcomes = yield from sched.run(jobs)
        ledger = yield from service.shutdown()
        return outcomes, ledger

    outcomes, ledger = env.run(until=env.process(main(),
                                                 name="service.scenario"))
    return {
        "env": env,
        "service": service,
        "scheduler": sched,
        "jobs": jobs,
        "outcomes": outcomes,
        "ledger": ledger,
        "summary": service.summary(),
        "completion_order": [o.name for o in outcomes],
        "checksums": {o.name: o.checksum for o in outcomes},
    }
