"""The multi-tenant checkpoint service: a shared, long-lived store.

:class:`CheckpointService` promotes :class:`~repro.store.CheckpointStore`
from a per-run object into a service many concurrent jobs checkpoint
into (the proxy-based DMTCP follow-on's service boundary):

* **one content-addressed namespace** — every tenant's chunks land in
  the same digest-keyed space on the service cluster's tiers, so two
  jobs checkpointing the same dataset store its chunks once.  Puts go
  through a :class:`~.index.ShardedChunkIndex`: per-shard locks let
  unrelated puts proceed in parallel while same-digest races serialize
  and dedup.
* **admission first** — every put clears the
  :class:`~.admission.AdmissionController` (tenant quota + global
  in-flight backpressure) *before* any byte is written; a quota
  rejection is soft (``PutResult.rejected``) so the checkpoint protocol
  never wedges.
* **tenant-safe GC** — the parent's per-filesystem refcounts already
  make chunk deletion safe across manifests; the service layers tenant
  ownership on top so retiring a manifest credits the right tenant's
  quota, and a chunk shared by two tenants survives either one's
  retention GC or full job deletion.
* **fair-share replication** — per-tenant replication queues drained
  round-robin in bounded batches, so one chatty tenant cannot starve
  the others' partner/Lustre copies.

Jobs talk to the service through a :class:`TenantStoreClient`, a facade
with the exact `store=` surface ``dmtcp_launch`` / ``dmtcp_restart`` /
``RecoveryManager`` expect.  Each client owns a private epoch base so
many coordinators (each counting epochs from 1) never collide in the
shared namespace; record epochs are absolute and pass through fetches
unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Tuple

from ..hardware.cluster import Cluster
from ..hardware.storage import QuotaExceededError
from ..store.manifest import Manifest, chunk_path
from ..store.store import CheckpointStore, PutResult, StoreConfig
from .admission import AdmissionController, AdmissionRejected
from .index import ShardedChunkIndex

__all__ = ["CheckpointService", "TenantStoreClient"]

#: spacing between per-client epoch bases: each launch's coordinator
#: counts 1, 2, 3… privately, so bases this far apart never collide
EPOCH_BASE_STEP = 1_000_000


class CheckpointService(CheckpointStore):
    """A shared store serving many tenants (see module docstring).

    Inherits the tracer hook class-wide from :class:`CheckpointStore`,
    so ``install_tracer`` lights up ``service.*`` events too.
    """

    def __init__(self, cluster: Cluster, config: StoreConfig = StoreConfig(),
                 name: str = "service",
                 n_shards: int = 16,
                 quotas: Optional[Dict[str, Optional[float]]] = None,
                 max_inflight_bytes: Optional[float] = None,
                 repl_batch_manifests: int = 8):
        super().__init__(cluster, config, name)
        self.index = ShardedChunkIndex(cluster.env, n_shards)
        self.admission = AdmissionController(
            cluster.env, quotas=quotas,
            max_inflight_bytes=max_inflight_bytes, owner=self)
        self.repl_batch_manifests = max(1, int(repl_batch_manifests))
        #: manifest ownership: (proc, epoch) → (tenant, referenced bytes)
        self._owners: Dict[Tuple[str, int], Tuple[str, float]] = {}
        #: per-tenant replication queues, drained round-robin
        self._pending_repl: Dict[str, Deque[Tuple[int, List[Manifest]]]] = {}
        self._repl_drainer = None
        self._next_base = 0
        #: sim-seconds each successful put took (p50/p99 latency source)
        self.put_latencies: List[float] = []
        self.stats.update({
            "puts_rejected": 0,
            #: what a dedup-free store would have written for the same
            #: admitted traffic (the dedup-ratio denominator)
            "bytes_naive": 0.0,
        })

    # -- clients --------------------------------------------------------------

    def client(self, tenant: str, job: str) -> "TenantStoreClient":
        """A fresh store facade for one (tenant, job) launch generation.
        Each call allocates a new epoch base, so a restarted job's
        coordinator (counting from 1 again) lands on fresh epochs."""
        self._next_base += EPOCH_BASE_STEP
        return TenantStoreClient(self, tenant, job, self._next_base)

    # -- put ------------------------------------------------------------------

    def put_for(self, tenant: str, job: str, rank: int, node_index: int,
                epoch: int, image, stall: float = 1.0) -> Generator:
        """Process generator: the multi-tenant ``put_image``.  ``epoch``
        arrives already absolute (client base applied).  Admission runs
        before any write; chunk writes serialize per index shard."""
        tracer = self.tracer
        disk = self.local.replica_disk(node_index)
        fs = disk.fs
        pairs = self._refs_for(image)
        referenced = sum(ref.logical_bytes for ref, _d in pairs) * stall \
            + image.header_bytes
        result = PutResult(epoch=epoch, manifest_path="")
        try:
            yield from self.admission.admit(
                tenant, referenced, proc=image.proc_name, job=job)
        except AdmissionRejected:
            self.stats["puts_rejected"] += 1
            result.rejected = True
            return result
        self.stats["bytes_naive"] += referenced
        span = None if tracer is None else tracer.begin(
            "service.put", image.proc_name, self.env.now, tenant=tenant,
            job=job, epoch=epoch, node=node_index, bytes=referenced)
        t0 = self.env.now
        stored = False
        try:
            by_shard: Dict[int, list] = {}
            for ref, data in pairs:
                by_shard.setdefault(
                    self.index.shard_of(ref.digest), []).append((ref, data))
            for shard_id in sorted(by_shard):
                # one shard at a time, never nested: no lock-order cycles
                yield from self.index.acquire(shard_id)
                try:
                    for ref, data in by_shard[shard_id]:
                        path = chunk_path(ref.digest)
                        if fs.exists(path):
                            # previous epoch, another rank, or another
                            # *job* already landed these bytes
                            result.chunks_deduped += 1
                            self.index.note_dedup(shard_id)
                            continue
                        logical = ref.logical_bytes * stall
                        yield from disk.write(path, data,
                                              logical_size=logical)
                        result.chunks_new += 1
                        result.bytes_written += logical
                        result.bytes_real += float(len(data))
                        self.index.note_new(shard_id, ref.digest, logical)
                finally:
                    self.index.release(shard_id)
            manifest = self._manifest_for(image, rank, node_index, epoch,
                                          [ref for ref, _d in pairs])
            yield from disk.write(manifest.path, manifest.to_bytes(),
                                  logical_size=image.header_bytes)
            result.bytes_written += image.header_bytes
            result.manifest_path = manifest.path
            self._register(fs, manifest)
            self._owners[(manifest.proc_name, epoch)] = (tenant, referenced)
            stored = True
        except QuotaExceededError as exc:
            # tier saturation below the tenant quota: tag and surface
            raise exc.with_tenant(tenant)
        finally:
            self.admission.release(referenced)
            if stored:
                self.admission.on_stored(tenant, referenced)
                self.put_latencies.append(self.env.now - t0)
            else:
                self.admission.on_failed(tenant, referenced, job=job)
            self.stats["puts"] += 1
            self.stats["chunks_new"] += result.chunks_new
            self.stats["chunks_deduped"] += result.chunks_deduped
            self.stats["bytes_written"] += result.bytes_written
            if tracer is not None:
                tracer.metrics.counter("service.chunks_new").inc(
                    result.chunks_new)
                tracer.metrics.counter("service.chunks_deduped").inc(
                    result.chunks_deduped)
                tracer.end(span, self.env.now, tenant=tenant,
                           chunks_new=result.chunks_new,
                           chunks_deduped=result.chunks_deduped,
                           bytes_written=result.bytes_written,
                           stored=stored)
        return result

    # -- fair-share replication ------------------------------------------------

    def schedule_replication_for(self, tenant: str, epoch: int) -> None:
        """Queue ``epoch``'s manifests on ``tenant``'s replication lane
        (idempotent per epoch, like the parent's scheduler) and make sure
        the round-robin drainer is running."""
        if epoch in self._replicated:
            return
        self._replicated.add(epoch)
        manifests = [by_epoch[epoch]
                     for _name, by_epoch in sorted(self._manifests.items())
                     if epoch in by_epoch]
        if not manifests:
            return
        self._pending_repl.setdefault(tenant, deque()).append(
            (epoch, manifests))
        self._kick_replicator()

    def _kick_replicator(self) -> None:
        if self._repl_drainer is None or not self._repl_drainer.is_alive:
            self._repl_drainer = self.env.process(
                self._drain_pending(), name=f"{self.name}.replicate")
            self._live_flows.append(self._repl_drainer)

    def _take_batch(self, queue: Deque[Tuple[int, List[Manifest]]]
                    ) -> Tuple[int, List[Manifest]]:
        batch: List[Manifest] = []
        epoch0 = queue[0][0]
        while queue and len(batch) < self.repl_batch_manifests:
            epoch, manifests = queue[0]
            room = self.repl_batch_manifests - len(batch)
            batch.extend(manifests[:room])
            if room >= len(manifests):
                queue.popleft()
            else:
                queue[0] = (epoch, manifests[room:])
        return epoch0, batch

    def _drain_pending(self) -> Generator:
        tracer = self.tracer
        while True:
            tenants = [t for t in sorted(self._pending_repl)
                       if self._pending_repl[t]]
            if not tenants:
                break
            for tenant in tenants:
                queue = self._pending_repl.get(tenant)
                if not queue:
                    continue
                epoch0, batch = self._take_batch(queue)
                if tracer is not None:
                    tracer.emit("service.replicate.batch", tenant,
                                self.env.now, tenant=tenant,
                                manifests=len(batch))
                yield from self._replicate_flow(epoch0, batch)
        for tenant in [t for t in self._pending_repl
                       if not self._pending_repl[t]]:
            del self._pending_repl[tenant]

    # -- GC with tenant credit -------------------------------------------------

    def _retire(self, proc_name: str, epoch: int) -> int:
        manifest = self._manifests.get(proc_name, {}).get(epoch)
        deleted = super()._retire(proc_name, epoch)
        if manifest is None:
            return deleted
        owner = self._owners.pop((proc_name, epoch), None)
        if owner is not None:
            self.admission.reclaim(owner[0], owner[1])
        for digest in set(manifest.digests()):
            if not any(digest in refs for refs in self._refs.values()):
                self.index.discard(digest)
        return deleted

    def delete_job(self, job: str) -> Tuple[int, int]:
        """Drop every checkpoint of ``job``'s processes (the tenant tore
        the job down).  Chunks another tenant's manifests still reference
        survive — refcounts, not ownership, decide deletion."""
        retired = deleted = 0
        # proc names are "<job>.r<rank>": exact-prefix match only, so
        # "jobA" never takes down "jobAB"
        for proc in sorted(p for p in self._manifests
                           if p == job or p.startswith(job + ".")):
            for epoch in sorted(self._manifests[proc]):
                deleted += self._retire(proc, epoch)
                retired += 1
        if retired and self.tracer is not None:
            self.tracer.emit("service.delete", job, self.env.now,
                             job=job, manifests=retired, chunks=deleted)
        return retired, deleted

    # -- staging ---------------------------------------------------------------

    def ingest_record(self, record, node_map=None, tiers=None) -> Manifest:
        manifest = super().ingest_record(record, node_map, tiers)
        # clients carry their own epoch bases; the parent's offset
        # bookkeeping must never shift shared-namespace epochs
        self._epoch_offset = 0
        return manifest

    def ingest_for(self, tenant: str, record, node_map=None,
                   tiers=None) -> Manifest:
        manifest = self.ingest_record(record, node_map, tiers)
        key = (manifest.proc_name, manifest.epoch)
        if key not in self._owners:
            referenced = sum(r.logical_bytes for r in manifest.chunks) \
                + float(manifest.header.get("header_bytes", 0.0))
            self._owners[key] = (tenant, referenced)
            # staged bytes hold quota but bypass the admission ledger
            # (offline staging is not put traffic)
            self.admission.tenant(tenant).used_bytes += referenced
        for ref in manifest.chunks:
            if ref.digest not in self.index:
                self.index.note_new(self.index.shard_of(ref.digest),
                                    ref.digest, ref.logical_bytes)
        return manifest

    # -- lifecycle -------------------------------------------------------------

    def drain(self) -> Generator:
        """Process generator: wait out the replication backlog (all
        tenants' queues plus any in-flight batch)."""
        for _guard in range(1_000_000):
            flows = [f for f in self._live_flows if f.is_alive]
            pending = any(self._pending_repl.get(t)
                          for t in self._pending_repl)
            if not flows and not pending:
                break
            if not flows:
                self._kick_replicator()
                flows = [f for f in self._live_flows if f.is_alive]
            yield self.env.all_of(flows)
        self._live_flows = [f for f in self._live_flows if f.is_alive]

    def shutdown(self) -> Generator:
        """Process generator: drain replication, then publish the final
        per-tenant conservation ledger (``service.account`` events)."""
        yield from self.drain()
        ledger = self.admission.account()
        if self.tracer is not None:
            self.tracer.emit("service.stats", self.name, self.env.now,
                             **{k: v for k, v in self.summary().items()
                                if not isinstance(v, dict)})
        return ledger

    def put_latency_quantiles(self) -> Dict[str, float]:
        lats = sorted(self.put_latencies)
        if not lats:
            return {"p50": 0.0, "p99": 0.0, "mean": 0.0, "count": 0}
        def q(p: float) -> float:
            return lats[min(len(lats) - 1, int(p * (len(lats) - 1) + 0.5))]
        return {"p50": q(0.50), "p99": q(0.99),
                "mean": sum(lats) / len(lats), "count": len(lats)}

    def dedup_ratio(self) -> float:
        """Physical bytes written / what a dedup-free store would have
        written for the same admitted traffic (lower is better)."""
        naive = self.stats["bytes_naive"]
        return self.stats["bytes_written"] / naive if naive > 0 else 1.0

    def summary(self) -> Dict[str, object]:
        return {
            "puts": self.stats["puts"],
            "puts_rejected": self.stats["puts_rejected"],
            "chunks_new": self.stats["chunks_new"],
            "chunks_deduped": self.stats["chunks_deduped"],
            "bytes_written": self.stats["bytes_written"],
            "bytes_naive": self.stats["bytes_naive"],
            "dedup_ratio": self.dedup_ratio(),
            "replicated_chunks": self.stats["replicated_chunks"],
            "gc_manifests": self.stats["gc_manifests"],
            "gc_chunks": self.stats["gc_chunks"],
            "inflight_bytes": self.admission.inflight_bytes,
            "index": self.index.summary(),
            "put_latency": self.put_latency_quantiles(),
        }


class TenantStoreClient:
    """One (tenant, job) generation's view of the service — the object
    handed to ``dmtcp_launch(store=...)`` / ``dmtcp_restart(store=...)``.

    Translates the coordinator's private epochs (1, 2, 3…) into the
    shared namespace by adding this client's base on the put/replicate
    path; fetch epochs are already absolute (``CheckpointRecord.epoch``)
    and pass through unchanged — the same convention the per-run store
    uses for its ``_epoch_offset``.
    """

    def __init__(self, service: CheckpointService, tenant: str, job: str,
                 epoch_base: int):
        self.service = service
        self.tenant = tenant
        self.job = job
        self.epoch_base = int(epoch_base)
        self.cluster = service.cluster
        self.env = service.env
        self.config = service.config

    # the dmtcp-facing store surface ------------------------------------------

    def put_image(self, rank: int, node_index: int, epoch: int,
                  image, stall: float = 1.0) -> Generator:
        return self.service.put_for(
            self.tenant, self.job, rank, node_index,
            self.epoch_base + epoch, image, stall=stall)

    def schedule_replication(self, epoch: int) -> None:
        self.service.schedule_replication_for(
            self.tenant, self.epoch_base + epoch)

    def fetch_image(self, proc_name: str, epoch: Optional[int] = None,
                    via_node_index: int = 0) -> Generator:
        return self.service.fetch_image(proc_name, epoch=epoch,
                                        via_node_index=via_node_index)

    def materialize_image(self, proc_name: str,
                          epoch: Optional[int] = None,
                          via_node_index: int = 0):
        return self.service.materialize_image(
            proc_name, epoch=epoch, via_node_index=via_node_index)

    def fetch_chunk(self, manifest, ref, via_node_index: int = 0):
        return self.service.fetch_chunk(manifest, ref, via_node_index)

    def latest_epoch(self, proc_name: str) -> int:
        return self.service.latest_epoch(proc_name)

    def manifest(self, proc_name: str, epoch: int):
        return self.service.manifest(proc_name, epoch)

    def stage_from(self, ckpt_set, node_map=None, tiers=None) -> None:
        for record in ckpt_set.records:
            self.service.ingest_for(self.tenant, record, node_map,
                                    tiers=tiers)

    def collect_garbage(self):
        return self.service.collect_garbage()

    def drain_replication(self) -> Generator:
        return self.service.drain()

    def stop(self) -> None:
        """Deliberate no-op: the per-run store kills replication because
        its flows target a dead cluster, but the *service* cluster
        outlives any one job — other tenants' copies must keep flowing."""

    @property
    def stats(self):
        return self.service.stats

    def delete(self) -> Tuple[int, int]:
        """Drop this job's checkpoints from the service."""
        return self.service.delete_job(self.job)
