"""Tenant quotas, admission control, and backpressure for the service.

Every put into the shared store passes the :class:`AdmissionController`
first:

* **quota** — each tenant carries an optional logical-byte quota layered
  *above* the :class:`~repro.hardware.storage.FileSystem` capacity
  quotas.  Quota accounting is on *referenced* (manifest logical) bytes
  regardless of physical dedup: a tenant is charged for what it asked
  the service to retain, not for what the content-addressing happened to
  share — the fair-share rule, and the one that keeps per-tenant byte
  conservation exact (``bytes_admitted == bytes_stored +
  bytes_rejected``, an invariant ``repro.obs`` checks on every trace).
* **backpressure** — a global in-flight byte window models the saturated
  tier: puts beyond the window queue FIFO and their wait is reported as
  admission latency (``service.admit`` carries ``queued``).
* **rejection** — a put that would overflow its tenant's quota is
  refused *softly*: :class:`AdmissionRejected` is caught by the store
  facade, which returns a ``rejected`` :class:`~repro.store.PutResult`
  so the checkpoint protocol never wedges on a broke tenant.

Trace vocabulary (emitted through the owning service's tracer):
``service.admit`` / ``service.reject`` points on the put path,
``service.quota.reclaim`` when GC credits bytes back, and one
self-contained ``service.account`` point per tenant at drain time
carrying the conservation totals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, Optional

from ..sim import Environment

__all__ = ["AdmissionController", "AdmissionRejected", "TenantState"]


class AdmissionRejected(RuntimeError):
    """A put exceeded its tenant's byte quota (soft failure)."""

    def __init__(self, tenant: str, requested: float, used: float,
                 quota: float):
        self.tenant = tenant
        self.requested = float(requested)
        self.used = float(used)
        self.quota = float(quota)
        super().__init__(
            f"tenant {tenant!r}: admission rejected {requested:.0f} "
            f"logical bytes ({used:.0f} of {quota:.0f} quota in use)")


@dataclass
class TenantState:
    """One tenant's quota position and conservation counters."""

    name: str
    quota_bytes: Optional[float] = None  # None = unlimited
    used_bytes: float = 0.0      # referenced bytes currently retained
    bytes_admitted: float = 0.0  # total bytes presented for admission
    bytes_stored: float = 0.0    # admitted bytes that landed durably
    bytes_rejected: float = 0.0  # refused by quota or failed mid-write
    puts: int = 0
    rejections: int = 0
    queued_seconds: float = 0.0  # sim seconds spent in backpressure


class AdmissionController:
    """Per-tenant quotas plus a global in-flight byte window (see module
    docstring).  ``owner`` is the service whose tracer admission events
    ride on."""

    def __init__(self, env: Environment,
                 quotas: Optional[Dict[str, Optional[float]]] = None,
                 max_inflight_bytes: Optional[float] = None,
                 owner=None):
        self.env = env
        self.owner = owner
        self.max_inflight_bytes = max_inflight_bytes
        self.tenants: Dict[str, TenantState] = {}
        for name, quota in sorted((quotas or {}).items()):
            self.tenants[name] = TenantState(name=name, quota_bytes=quota)
        self._inflight = 0.0
        self._waiters: Deque = deque()
        #: rejected-put counts per job (the scheduler reports these)
        self.job_rejections: Dict[str, int] = {}

    @property
    def _tracer(self):
        return None if self.owner is None else self.owner.tracer

    @property
    def inflight_bytes(self) -> float:
        return self._inflight

    def tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = self.tenants[name] = TenantState(name=name)
        return state

    def set_quota(self, name: str, quota_bytes: Optional[float]) -> None:
        self.tenant(name).quota_bytes = quota_bytes

    # -- the put path --------------------------------------------------------

    def admit(self, tenant: str, nbytes: float, proc: str = "",
              job: str = "") -> Generator:
        """Process generator: charge ``nbytes`` against ``tenant`` or
        raise :class:`AdmissionRejected`.  Queues (FIFO) while the global
        in-flight window is saturated; returns seconds spent queued."""
        state = self.tenant(tenant)
        nbytes = float(nbytes)
        state.bytes_admitted += nbytes
        if state.quota_bytes is not None \
                and state.used_bytes + nbytes > state.quota_bytes:
            state.bytes_rejected += nbytes
            state.rejections += 1
            if job:
                self.job_rejections[job] = \
                    self.job_rejections.get(job, 0) + 1
            tracer = self._tracer
            if tracer is not None:
                tracer.emit("service.reject", proc or tenant, self.env.now,
                            tenant=tenant, job=job, bytes=nbytes,
                            used=state.used_bytes,
                            quota=state.quota_bytes)
                tracer.metrics.counter("service.rejections").inc()
            raise AdmissionRejected(tenant, nbytes, state.used_bytes,
                                    state.quota_bytes)
        t0 = self.env.now
        queued_before = False
        while self.max_inflight_bytes is not None and self._inflight > 0 \
                and self._inflight + nbytes > self.max_inflight_bytes:
            gate = self.env.event()
            if queued_before:
                # woken but still blocked: keep our place at the head
                self._waiters.appendleft(gate)
            else:
                self._waiters.append(gate)
                queued_before = True
            try:
                yield gate
            except GeneratorExit:
                # killed while queued: this put never happened — undo the
                # admission charge (conservation) and don't eat a wakeup
                state.bytes_admitted -= nbytes
                try:
                    self._waiters.remove(gate)
                except ValueError:
                    # already woken: pass the wakeup to the next in line
                    if self._waiters:
                        self._waiters.popleft().succeed()
                raise
        queued = self.env.now - t0
        self._inflight += nbytes
        state.used_bytes += nbytes
        state.queued_seconds += queued
        tracer = self._tracer
        if tracer is not None:
            tracer.emit("service.admit", proc or tenant, self.env.now,
                        tenant=tenant, job=job, bytes=nbytes,
                        queued=queued)
            tracer.metrics.counter("service.admitted").inc()
        return queued

    def release(self, nbytes: float) -> None:
        """The put finished (or died): free its in-flight window share and
        wake the queue head to re-check."""
        self._inflight = max(0.0, self._inflight - float(nbytes))
        if self._waiters:
            self._waiters.popleft().succeed()

    def on_stored(self, tenant: str, nbytes: float) -> None:
        state = self.tenant(tenant)
        state.bytes_stored += float(nbytes)
        state.puts += 1

    def on_failed(self, tenant: str, nbytes: float, job: str = "") -> None:
        """An *admitted* put died before landing (tier quota, or the job
        was killed mid-write): refund the retention charge and fold the
        bytes into the rejected side of the conservation ledger."""
        state = self.tenant(tenant)
        nbytes = float(nbytes)
        state.used_bytes = max(0.0, state.used_bytes - nbytes)
        state.bytes_rejected += nbytes
        state.rejections += 1
        if job:
            self.job_rejections[job] = self.job_rejections.get(job, 0) + 1

    def reclaim(self, tenant: str, nbytes: float) -> None:
        """GC retired a manifest: credit its referenced bytes back."""
        state = self.tenant(tenant)
        state.used_bytes = max(0.0, state.used_bytes - float(nbytes))
        tracer = self._tracer
        if tracer is not None:
            tracer.emit("service.quota.reclaim", tenant, self.env.now,
                        tenant=tenant, bytes=float(nbytes),
                        used=state.used_bytes)

    # -- accounting ----------------------------------------------------------

    def account(self) -> Dict[str, Dict[str, float]]:
        """Emit one self-contained ``service.account`` point per tenant
        with the conservation totals (only meaningful when no put is in
        flight — call after draining).  Returns the per-tenant ledger."""
        tracer = self._tracer
        ledger: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.tenants):
            state = self.tenants[name]
            row = {
                "bytes_admitted": state.bytes_admitted,
                "bytes_stored": state.bytes_stored,
                "bytes_rejected": state.bytes_rejected,
                "used_bytes": state.used_bytes,
                "puts": state.puts,
                "rejections": state.rejections,
                "queued_seconds": state.queued_seconds,
            }
            ledger[name] = row
            if tracer is not None:
                tracer.emit("service.account", name, self.env.now,
                            tenant=name, **row)
        return ledger
