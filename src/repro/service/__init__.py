"""repro.service: a shared, long-lived, multi-tenant checkpoint service.

Promotes :class:`repro.store.CheckpointStore` from a per-job sidecar to
cluster infrastructure (DESIGN §16):

* :class:`ShardedChunkIndex` — the content-addressed chunk index,
  sharded by digest with per-shard locks and stats, so hundreds of
  concurrent jobs dedup against each other without a global lock;
* :class:`AdmissionController` — per-tenant byte quotas layered on
  :class:`~repro.hardware.FileSystem` capacity, with FIFO backpressure
  when the ingest tier saturates and a conservation ledger
  (``bytes_admitted == bytes_stored + bytes_rejected``) checked as a
  trace invariant;
* :class:`CheckpointService` / :class:`TenantStoreClient` — the service
  proper plus the per-(tenant, job) facade that plugs into the existing
  ``store=`` seam of ``dmtcp_launch`` / ``dmtcp_restart`` /
  :class:`~repro.faults.RecoveryManager`;
* :class:`GangScheduler` — a Poisson stream of gang-scheduled jobs over
  a node-slot pool, with preemption-via-checkpoint and bit-identical
  restart-on-resume.
"""

from .admission import (AdmissionController, AdmissionRejected,
                        TenantState)
from .index import ShardedChunkIndex, ShardStats
from .scheduler import (GangScheduler, JobOutcome, ServiceJob, WORKLOADS,
                        job_mix, pingpong_mpi_app, poisson_arrivals,
                        service_scenario)
from .service import (CheckpointService, EPOCH_BASE_STEP,
                      TenantStoreClient)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "CheckpointService",
    "EPOCH_BASE_STEP",
    "GangScheduler",
    "JobOutcome",
    "ServiceJob",
    "ShardedChunkIndex",
    "ShardStats",
    "TenantState",
    "TenantStoreClient",
    "WORKLOADS",
    "job_mix",
    "pingpong_mpi_app",
    "poisson_arrivals",
    "service_scenario",
]
