"""Mini-MPI over the simulated verbs (IB BTL) or TCP sockets (TCP BTL)."""

from .api import ANY_SOURCE, Communicator, MpiError
from .btl_ib import EAGER_LIMIT, IbBtl
from .btl_tcp import TcpBtl
from .runtime import PLM_PORT, make_mpi_specs

__all__ = [
    "ANY_SOURCE",
    "Communicator",
    "EAGER_LIMIT",
    "IbBtl",
    "MpiError",
    "PLM_PORT",
    "TcpBtl",
    "make_mpi_specs",
]
