"""The InfiniBand byte-transfer layer of the mini-MPI.

Protocol (mirrors Open MPI's openib BTL at the fidelity the paper needs):

* per-peer RC queue pairs, created lazily; connection wire-up exchanges
  (lid, qp_num) over an out-of-band TCP channel carrying the *virtual* ids
  the verbs library handed us — exactly the §3.2.1 bootstrapping path;
* one completion queue and one shared receive queue per rank; control
  messages (envelopes, CTS, FIN) land in pre-posted SRQ slots;
* small payloads travel inline in the envelope (eager); large payloads use
  rendezvous — envelope → CTS (exposing the receiver's rkey) → RDMA write
  straight between application buffers → FIN.  Open MPI's default RDMA
  path is what the paper checkpoints, so the plugin's rkey virtualization
  is on the hot path here.
"""

from __future__ import annotations

import itertools
import pickle
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..dmtcp.process import AppContext
from ..ibverbs.connect import qp_to_init, qp_to_rtr, qp_to_rts
from ..ibverbs.enums import AccessFlags, WcOpcode, WrOpcode
from ..ibverbs.structs import (
    ibv_qp_init_attr,
    ibv_recv_wr,
    ibv_send_wr,
    ibv_sge,
)
from ..memory import Region
from ..net.tcp import TcpStack

__all__ = ["IbBtl", "EAGER_LIMIT", "CTRL_SLOT"]

EAGER_LIMIT = 12 * 1024      # classic openib BTL eager ceiling (the
                             # Communicator uses its inline threshold)
CTRL_SLOT = 512              # bytes per pre-posted control slot
_N_CTRL_SLOTS = 256
_FULL = (AccessFlags.LOCAL_WRITE | AccessFlags.REMOTE_WRITE
         | AccessFlags.REMOTE_READ)
BTL_PORT_BASE = 25000


class IbBtl:
    """One rank's IB endpoint."""

    def __init__(self, ctx: AppContext, rank: int, size: int):
        self.ctx = ctx
        self.rank = rank
        self.size = size
        self.on_control: Optional[Callable[[int, dict], None]] = None
        self.on_data: Optional[Callable[[int], None]] = None  # rts_id done
        ibv = ctx.ibv
        self.ibctx = ibv.open_device(ibv.get_device_list()[0])
        self.pd = ibv.alloc_pd(self.ibctx)
        self.cq = ibv.create_cq(self.ibctx, cqe=65536)
        self.srq = ibv.create_srq(self.pd, max_wr=_N_CTRL_SLOTS + 16)
        self.lid = ibv.query_port(self.ibctx).lid
        # control slots: one region, N slots, pre-posted to the SRQ
        # (ensure: a chaos restart restores these regions before the BTL
        # is rebuilt from scratch, so adopt rather than remap)
        self.ctrl = ctx.memory.ensure(f"{ctx.name}.mpi.ctrl",
                                      CTRL_SLOT * _N_CTRL_SLOTS)
        self.ctrl_mr = ibv.reg_mr(self.pd, self.ctrl.addr,
                                  self.ctrl.size, _FULL)
        self._ctrl_wrs = self._make_ctrl_wrs()
        for slot in range(_N_CTRL_SLOTS):
            self._post_ctrl_slot(slot)
        # send staging ring for control messages
        self.stage = ctx.memory.ensure(f"{ctx.name}.mpi.stage",
                                       CTRL_SLOT * 64)
        self.stage_mr = ibv.reg_mr(self.pd, self.stage.addr,
                                   self.stage.size, _FULL)
        self._stage_next = 0
        self._qps: Dict[int, Any] = {}           # peer rank -> virtual qp
        self._ready: Dict[int, Any] = {}         # peer rank -> ready event
        self._qp_rank: Dict[int, int] = {}       # virtual qpn -> peer rank
        self._mr_cache: Dict[int, Any] = {}      # region addr -> virtual mr
        self._pending_sends: Dict[int, Any] = {} # wr_id -> completion event
        self._wr_ids = itertools.count(1)
        self._progress = None
        self._stopped = False
        # out-of-band connection service (the §3.2.1 side channel)
        self.oob_port = BTL_PORT_BASE + rank
        self._oob_listener = None
        self.peer_dir: Dict[int, str] = {}       # rank -> hostname

    # -- wire-up ---------------------------------------------------------------

    def start(self, peer_dir: Dict[int, str]) -> None:
        """Begin accepting lazy-connect requests and progressing."""
        self.peer_dir = peer_dir
        stack = TcpStack.of(self.ctx.proc.node)
        self._oob_listener = stack.listen(self.oob_port)
        self._oob_thread = self.ctx.proc.spawn_thread(
            self._oob_accept_loop(), name=f"{self.ctx.name}.btl.oob")
        self._progress = self.ctx.proc.spawn_thread(
            self._progress_loop(), name=f"{self.ctx.name}.btl.progress")
        self.ctx.on_restart.append(self._after_restart)

    def _after_restart(self, appctx) -> None:
        """Re-create the OOB listener on the restart cluster's network
        (listening TCP sockets are handled by DMTCP's socket plugin in real
        life — prior work; here the runtime rebuilds them).  Existing QP
        connections keep working through the plugin's virtualization; the
        stale hostname directory is refreshed from the restart
        name-service exchange."""
        prefix = appctx.name.rsplit(".r", 1)[0]
        db = getattr(appctx, "restart_db", {})
        for rank in range(self.size):
            host = db.get(f"__host:{prefix}.r{rank}")
            if host is not None:
                self.peer_dir[rank] = host
        if self._oob_thread is not None and self._oob_thread.is_alive:
            self._oob_thread.kill()
        stack = TcpStack.of(appctx.proc.node)
        self._oob_listener = stack.listen(self.oob_port)
        self._oob_thread = appctx.proc.spawn_thread(
            self._oob_accept_loop(), name=f"{appctx.name}.btl.oob")

    def _make_qp(self):
        ibv = self.ctx.ibv
        return ibv.create_qp(self.pd, ibv_qp_init_attr(
            send_cq=self.cq, recv_cq=self.cq, srq=self.srq,
            max_send_wr=4096))

    def _oob_accept_loop(self) -> Generator:
        while True:
            conn = yield self._oob_listener.accept()
            req = yield conn.recv()
            # passive side of a lazy connect
            qp = self._make_qp()
            ibv = self.ctx.ibv
            qp_to_init(ibv, qp)
            qp_to_rtr(ibv, qp, dest_qp_num=req["qpn"], dlid=req["lid"])
            qp_to_rts(ibv, qp)
            self._qp_rank[qp.qp_num] = req["rank"]
            # if both sides connected simultaneously, keep the first QP we
            # got for sending (either pair works; the SRQ receives from any)
            if req["rank"] not in self._qps:
                self._qps[req["rank"]] = qp
                ready = self._ready.setdefault(req["rank"],
                                               self.ctx.env.event())
                if not ready.triggered:
                    ready.succeed()
            yield from conn.send({"qpn": qp.qp_num, "lid": self.lid})

    def connect(self, peer: int) -> Generator:
        """Ensure a ready QP to ``peer`` (waits if a connect is running)."""
        ready = self._ready.get(peer)
        if ready is not None:
            if not ready.triggered:
                yield ready
            return self._qps[peer]
        ready = self.ctx.env.event()
        self._ready[peer] = ready
        ibv = self.ctx.ibv
        qp = self._make_qp()
        self._qp_rank[qp.qp_num] = peer
        stack = TcpStack.of(self.ctx.proc.node)
        conn = yield from stack.connect(self.peer_dir[peer],
                                        BTL_PORT_BASE + peer)
        yield from conn.send({"rank": self.rank, "qpn": qp.qp_num,
                              "lid": self.lid})
        reply = yield conn.recv()
        qp_to_init(ibv, qp)
        qp_to_rtr(ibv, qp, dest_qp_num=reply["qpn"], dlid=reply["lid"])
        qp_to_rts(ibv, qp)
        conn.close()
        if peer not in self._qps:
            self._qps[peer] = qp
        if not ready.triggered:
            ready.succeed()
        return self._qps[peer]

    # -- CRS support: full network teardown / rebuild ---------------------------------
    #
    # Open MPI's BLCR-based checkpoint-restart service cannot checkpoint
    # live InfiniBand state, so it closes the openib BTL (destroying QPs,
    # deregistering every pinned region) before calling BLCR, and rebuilds
    # it afterwards — the paper's "tear down the network" baseline.

    def crs_teardown(self) -> None:
        ibv = self.ctx.ibv
        for qp in self._qps.values():
            ibv.destroy_qp(qp)
        self._qps.clear()
        self._ready.clear()
        for mr in self._mr_cache.values():
            ibv.dereg_mr(mr)
        self._mr_cache.clear()
        ibv.dereg_mr(self.ctrl_mr)
        ibv.dereg_mr(self.stage_mr)
        ibv.destroy_srq(self.srq)
        ibv.destroy_cq(self.cq)

    def crs_rebuild(self) -> None:
        """Re-create CQ/SRQ/registrations; QPs reconnect lazily on demand."""
        ibv = self.ctx.ibv
        self.cq = ibv.create_cq(self.ibctx, cqe=65536)
        self.srq = ibv.create_srq(self.pd, max_wr=_N_CTRL_SLOTS + 16)
        self.ctrl_mr = ibv.reg_mr(self.pd, self.ctrl.addr, self.ctrl.size,
                                  _FULL)
        self.stage_mr = ibv.reg_mr(self.pd, self.stage.addr,
                                   self.stage.size, _FULL)
        self._ctrl_wrs = self._make_ctrl_wrs()  # new lkey after re-reg
        for slot in range(_N_CTRL_SLOTS):
            self._post_ctrl_slot(slot)

    def kick_progress(self) -> None:
        """Spurious-wake the progress loop (its old CQ-notify event died
        with the torn-down completion queue)."""
        if self._progress is not None and self._progress.is_alive:
            target = self._progress._target
            if target is not None and not target.triggered:
                target.succeed()

    def pending_traffic(self) -> int:
        """Outstanding local sends (the CRS quiesce waits for zero)."""
        return len(self._pending_sends)

    # -- memory registration cache --------------------------------------------------

    def mr_for(self, region: Region):
        mr = self._mr_cache.get(region.addr)
        if mr is None:
            mr = self.ctx.ibv.reg_mr(self.pd, region.addr, region.size,
                                     _FULL)
            self._mr_cache[region.addr] = mr
        return mr

    # -- control-message send ------------------------------------------------------------

    def send_control(self, peer: int, msg: dict,
                     signaled: bool = False) -> Generator:
        """Pickle ``msg`` into a staging slot and post a SEND."""
        qp = yield from self.connect(peer)
        data = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        if len(data) > CTRL_SLOT:
            raise ValueError(f"control message too large ({len(data)}B)")
        slot = self._stage_next % 64
        self._stage_next += 1
        addr = self.stage.addr + slot * CTRL_SLOT
        self.ctx.memory.write(addr, data)
        wr_id = next(self._wr_ids)
        self.ctx.ibv.post_send(qp, ibv_send_wr(
            wr_id=wr_id, sg_list=[ibv_sge(addr, len(data),
                                          self.stage_mr.lkey)],
            opcode=WrOpcode.SEND))
        evt = self.ctx.env.event()
        self._pending_sends[wr_id] = evt
        yield evt  # completion = slot reusable

    # -- rendezvous data transfer ----------------------------------------------------------

    def rdma_put(self, peer: int, region: Region, offset: int,
                 nbytes: int, rts_id: int, raddr: int,
                 rkey: int) -> Generator:
        """RDMA-write ``nbytes`` of ``region`` into the peer's exposed
        buffer, then send the FIN control message."""
        qp = yield from self.connect(peer)  # may re-establish after a CRS
        mr = self.mr_for(region)
        wr_id = next(self._wr_ids)
        self.ctx.ibv.post_send(qp, ibv_send_wr(
            wr_id=wr_id,
            sg_list=[ibv_sge(region.addr + offset, nbytes, mr.lkey)],
            opcode=WrOpcode.RDMA_WRITE, remote_addr=raddr, rkey=rkey))
        evt = self.ctx.env.event()
        self._pending_sends[wr_id] = evt
        yield evt
        yield from self.send_control(peer, {"kind": "fin", "rts": rts_id})

    # -- progress engine ---------------------------------------------------------------------

    def _make_ctrl_wrs(self) -> List[ibv_recv_wr]:
        """Per-slot receive WR templates.  The driver copies at post time
        (verbs semantics: the WR is consumed by ``post``), so re-posting
        the same template on slot re-arm is safe — and skips two object
        constructions per control message.  Rebuilt whenever ``ctrl_mr``
        is re-registered (CRS teardown/rebuild), since the lkey changes."""
        return [ibv_recv_wr(wr_id=slot, sg_list=[
                    ibv_sge(self.ctrl.addr + slot * CTRL_SLOT, CTRL_SLOT,
                            self.ctrl_mr.lkey)])
                for slot in range(_N_CTRL_SLOTS)]

    def _post_ctrl_slot(self, slot: int) -> None:
        self.ctx.ibv.post_srq_recv(self.srq, self._ctrl_wrs[slot])

    def stop(self) -> None:
        self._stopped = True

    def _progress_loop(self) -> Generator:
        ibv = self.ctx.ibv
        while not self._stopped:
            wcs = ibv.poll_cq(self.cq, 32)
            if not wcs:
                notify = ibv.req_notify_cq(self.cq)
                yield ibv.get_cq_event(notify)
                yield self.ctx.compute(seconds=0.0)  # pay wrapper overhead
                continue
            for wc in wcs:
                self._handle_wc(wc)

    def _handle_wc(self, wc) -> None:
        if wc.opcode is WcOpcode.RECV:
            slot = wc.wr_id
            raw = self.ctx.memory.read(self.ctrl.addr + slot * CTRL_SLOT,
                                       CTRL_SLOT)
            msg = pickle.loads(raw)
            self._post_ctrl_slot(slot)  # re-arm the slot
            peer = self._qp_rank.get(wc.qp_num)
            if self.on_control is not None:
                self.on_control(peer, msg)
        elif wc.opcode in (WcOpcode.SEND, WcOpcode.RDMA_WRITE,
                           WcOpcode.RDMA_READ):
            evt = self._pending_sends.pop(wc.wr_id, None)
            if evt is not None and not evt.triggered:
                evt.succeed(wc)
