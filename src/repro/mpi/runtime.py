"""mpirun: rank placement, out-of-band wire-up, and the per-rank main.

The wire-up is a PLM-style registry: rank 0 runs a TCP server; every rank
registers (rank → hostname) and receives the full directory, after which
lazy per-pair QP connections use that directory (§3.2.1's out-of-band id
exchange, carrying virtual ids under DMTCP).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..dmtcp.launcher import AppSpec
from ..dmtcp.process import AppContext
from ..hardware.cluster import Cluster
from ..net.tcp import TcpStack
from .api import Communicator
from .btl_ib import IbBtl
from .btl_tcp import TcpBtl

__all__ = ["make_mpi_specs", "PLM_PORT"]

PLM_PORT = 24000


def _plm_server(ctx: AppContext, size: int,
                directory: Dict[int, str]) -> Generator:
    """Rank 0's registry: collect everyone, broadcast the directory."""
    stack = TcpStack.of(ctx.proc.node)
    listener = stack.listen(PLM_PORT)
    conns = []
    for _ in range(size - 1):
        conn = yield listener.accept()
        reg = yield conn.recv()
        directory[reg["rank"]] = reg["host"]
        conns.append(conn)
    for conn in conns:
        yield from conn.send(dict(directory),
                             size=128.0 + 48.0 * len(directory))
    listener.close()


def _plm_register(ctx: AppContext, rank: int,
                  rank0_host: str) -> Generator:
    stack = TcpStack.of(ctx.proc.node)
    conn = yield from stack.connect(rank0_host, PLM_PORT)
    yield from conn.send({"rank": rank, "host": ctx.proc.node.name})
    directory = yield conn.recv()
    conn.close()
    return directory


def make_mpi_specs(cluster: Cluster, nprocs: int,
                   app_fn: Callable[[AppContext, Communicator], Generator],
                   ppn: Optional[int] = None,
                   transport: str = "ib",
                   name_prefix: str = "mpi") -> List[AppSpec]:
    """Build the AppSpecs for an ``nprocs``-rank job.

    ``ppn`` (processes per node) defaults to filling nodes block-wise with
    the node's core count, like the paper's SLURM placements.
    """
    n_nodes = len(cluster.nodes)
    if ppn is None:
        ppn = max(1, -(-nprocs // n_nodes))
    if -(-nprocs // ppn) > n_nodes:
        raise ValueError(
            f"{nprocs} ranks at {ppn}/node need {-(-nprocs // ppn)} nodes, "
            f"cluster has {n_nodes}")
    rank0_host = cluster.nodes[0].name
    specs: List[AppSpec] = []
    for rank in range(nprocs):
        node_index = rank // ppn

        def factory(ctx: AppContext, rank=rank) -> Generator:
            if transport == "ib":
                btl = IbBtl(ctx, rank, nprocs)
            elif transport == "tcp":
                btl = TcpBtl(ctx, rank, nprocs)
            else:
                raise ValueError(f"unknown transport {transport!r}")
            if rank == 0:
                directory = {0: ctx.proc.node.name}
                yield from _plm_server(ctx, nprocs, directory)
            else:
                directory = yield from _plm_register(ctx, rank, rank0_host)
            btl.start(directory)
            comm = Communicator(ctx, btl, rank, nprocs)
            ctx.btl = btl   # exposed for the CRS baseline's teardown
            ctx.comm = comm
            result = yield from app_fn(ctx, comm)
            yield from comm.barrier()  # MPI_Finalize semantics
            btl.stop()
            return result

        specs.append(AppSpec(node_index=node_index,
                             name=f"{name_prefix}.r{rank}",
                             factory=factory, rank=rank))
    return specs
