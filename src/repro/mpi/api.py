"""The mini-MPI communicator: point-to-point matching and collectives.

mpi4py-flavoured split: lowercase ``send_obj``/``recv_obj`` move pickled
Python objects (control-channel eager path); capitalized ``Send``/``Recv``
move raw buffer bytes between registered memory regions via the rendezvous
RDMA protocol (the path whose rkeys the paper's plugin must virtualize).

SPMD collectives (barrier, bcast, reduce, allreduce, gather, alltoall) are
built on those primitives with deterministic tag allocation, so they work
unchanged over the IB BTL and the TCP BTL.
"""

from __future__ import annotations

import itertools
import pickle
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..dmtcp.process import AppContext
from ..memory import Region

__all__ = ["Communicator", "ANY_SOURCE", "MpiError"]

ANY_SOURCE = -1
_TAG_COLLECTIVE = 1 << 24


class MpiError(RuntimeError):
    pass


class _PostedRecv:
    __slots__ = ("tag", "source", "region", "offset", "nbytes", "event")

    def __init__(self, tag, source, region, offset, nbytes, event):
        self.tag = tag
        self.source = source
        self.region = region
        self.offset = offset
        self.nbytes = nbytes
        self.event = event

    def matches(self, tag: int, src: int) -> bool:
        return self.tag == tag and self.source in (ANY_SOURCE, src)


class Communicator:
    """COMM_WORLD for one rank."""

    def __init__(self, ctx: AppContext, btl, rank: int, size: int):
        self.ctx = ctx
        self.btl = btl
        self.rank = rank
        self.size = size
        btl.on_control = self._on_control
        self._rts_ids = itertools.count(1)
        self._coll_seq = itertools.count(1)
        # receiver state
        self._posted: List[_PostedRecv] = []
        self._unexpected: List[Tuple[int, dict]] = []
        self._rts_wait: Dict[int, _PostedRecv] = {}
        # sender state
        self._send_wait: Dict[int, Tuple] = {}   # rts id -> (args, event)
        # object messages
        self._obj_posted: List[Tuple[int, int, Any]] = []  # (tag, src, evt)
        self._obj_unexpected: List[Tuple[int, int, Any]] = []

    # -- introspection -----------------------------------------------------------

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    def pending_transfers(self) -> int:
        """Rendezvous transfers currently crossing the wire (receivers
        holding an exposed buffer awaiting the RDMA put) — what the CRS
        quiesce must drain before the network can be torn down.  Sends
        still awaiting a CTS are safe to freeze: their data has not left
        the sender, and the CTS/put will flow after the rebuild."""
        return len(self._rts_wait)

    # -- buffer-path point-to-point ------------------------------------------------

    #: largest *real* payload carried inline in the envelope (eager path);
    #: bigger transfers rendezvous through an RDMA write
    EAGER_INLINE_BYTES = 256

    def isend(self, region: Region, offset: int, nbytes: int, dest: int,
              tag: int = 0):
        """Non-blocking send; returns a completion event.

        Small messages go eager — the payload rides in the envelope and
        the send completes locally (buffered semantics, like Open MPI's
        eager protocol).  Larger ones rendezvous: RTS → CTS (receiver's
        rkey) → RDMA write → FIN."""
        if dest == self.rank:
            raise MpiError("self-sends not supported; use memory directly")
        rts = next(self._rts_ids)
        done = self.ctx.env.event()
        logical = nbytes * region.repr_scale
        if nbytes <= self.EAGER_INLINE_BYTES \
                and logical <= self.EAGER_INLINE_BYTES:
            payload = self.ctx.memory.read(region.addr + offset, nbytes)

            def launch_eager():
                yield from self.btl.send_control(dest, {
                    "kind": "eager", "tag": tag, "src": self.rank,
                    "nbytes": nbytes, "logical": logical, "rts": rts,
                    "data": payload})
                if not done.triggered:
                    done.succeed(nbytes)  # buffered: complete on hand-off

            self.ctx.proc.spawn_thread(launch_eager(),
                                       name=f"{self.ctx.name}.eag{rts}")
            return done
        self._send_wait[rts] = ((region, offset, nbytes), done)

        def launch():
            yield from self.btl.send_control(dest, {
                "kind": "rts", "tag": tag, "src": self.rank,
                "nbytes": nbytes, "logical": logical, "rts": rts})

        self.ctx.proc.spawn_thread(launch(),
                                   name=f"{self.ctx.name}.isend{rts}")
        return done

    def Send(self, region: Region, offset: int, nbytes: int, dest: int,
             tag: int = 0) -> Generator:
        yield self.isend(region, offset, nbytes, dest, tag)

    def irecv(self, region: Region, offset: int, nbytes: int,
              source: int = ANY_SOURCE, tag: int = 0):
        """Non-blocking receive; returns a completion event."""
        done = self.ctx.env.event()
        posted = _PostedRecv(tag, source, region, offset, nbytes, done)
        self._posted.append(posted)
        self._match_unexpected()
        return done

    def Recv(self, region: Region, offset: int, nbytes: int,
             source: int = ANY_SOURCE, tag: int = 0) -> Generator:
        yield self.irecv(region, offset, nbytes, source, tag)

    # -- object-path point-to-point ------------------------------------------------------

    def send_obj(self, obj: Any, dest: int, tag: int = 0) -> Generator:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if len(data) > 380:
            raise MpiError(
                f"object message too large ({len(data)}B); use Send()")
        yield from self.btl.send_control(dest, {
            "kind": "obj", "tag": tag, "src": self.rank, "data": data})

    def recv_obj(self, source: int = ANY_SOURCE, tag: int = 0) -> Generator:
        for i, (utag, usrc, data) in enumerate(self._obj_unexpected):
            if utag == tag and source in (ANY_SOURCE, usrc):
                del self._obj_unexpected[i]
                return pickle.loads(data)
        evt = self.ctx.env.event()
        self._obj_posted.append((tag, source, evt))
        data = yield evt
        return pickle.loads(data)

    # -- control-message dispatch (runs in the BTL progress thread) ----------------------

    def _on_control(self, peer: int, msg: dict) -> None:
        kind = msg["kind"]
        if kind in ("rts", "eager"):
            self._unexpected.append((peer, msg))
            self._match_unexpected()
        elif kind == "cts":
            (region, offset, nbytes), done = self._send_wait.pop(msg["rts"])

            def put(peer=peer, msg=msg):
                yield from self.btl.rdma_put(
                    peer, region, offset, nbytes, msg["rts"],
                    msg["raddr"], msg["rkey"])
                if not done.triggered:
                    done.succeed(nbytes)

            self.ctx.proc.spawn_thread(put(),
                                       name=f"{self.ctx.name}.put")
        elif kind == "fin":
            posted = self._rts_wait.pop((peer, msg["rts"]), None)
            if posted is not None and not posted.event.triggered:
                posted.event.succeed(posted.nbytes)
        elif kind == "obj":
            for i, (tag, src, evt) in enumerate(self._obj_posted):
                if tag == msg["tag"] and src in (ANY_SOURCE, msg["src"]):
                    del self._obj_posted[i]
                    if not evt.triggered:
                        evt.succeed(msg["data"])
                    return
            self._obj_unexpected.append((msg["tag"], msg["src"],
                                         msg["data"]))
        else:  # pragma: no cover - protocol bug
            raise MpiError(f"unknown control message {kind!r}")

    def _match_unexpected(self) -> None:
        matched = True
        while matched:
            matched = False
            for ui, (peer, msg) in enumerate(self._unexpected):
                for pi, posted in enumerate(self._posted):
                    if posted.matches(msg["tag"], msg["src"]):
                        if msg["nbytes"] > posted.nbytes:
                            raise MpiError(
                                f"message truncation: {msg['nbytes']} > "
                                f"{posted.nbytes}")
                        del self._unexpected[ui]
                        del self._posted[pi]
                        if msg["kind"] == "eager":
                            self.ctx.memory.write(
                                posted.region.addr + posted.offset,
                                msg["data"])
                            if not posted.event.triggered:
                                posted.event.succeed(msg["nbytes"])
                        else:
                            self._issue_cts(peer, msg, posted)
                        matched = True
                        break
                if matched:
                    break

    def _issue_cts(self, peer: int, msg: dict, posted: _PostedRecv) -> None:
        # rts ids are per-sender counters: key by (peer, rts) or two
        # senders' ids collide and a receive completion is lost
        self._rts_wait[(peer, msg["rts"])] = posted
        mr = self.btl.mr_for(posted.region)

        def cts():
            yield from self.btl.send_control(peer, {
                "kind": "cts", "rts": msg["rts"],
                "raddr": posted.region.addr + posted.offset,
                "rkey": mr.rkey})

        self.ctx.proc.spawn_thread(cts(), name=f"{self.ctx.name}.cts")

    # -- collectives -----------------------------------------------------------------------

    def _next_tag(self) -> int:
        """Tag block for one collective call: SPMD programs call
        collectives in the same order on every rank, so the sequence
        numbers agree; the stride leaves room for per-round/per-phase
        offsets within one collective (up to 4096 ranks)."""
        return _TAG_COLLECTIVE + 4096 * next(self._coll_seq)

    def barrier(self) -> Generator:
        """Dissemination barrier: ceil(log2(n)) rounds."""
        tag = self._next_tag()
        n, rank = self.size, self.rank
        k, rnd = 1, 0
        while k < n:
            dest = (rank + k) % n
            src = (rank - k) % n
            yield from self.send_obj(None, dest, tag + rnd)
            yield from self.recv_obj(src, tag + rnd)
            k *= 2
            rnd += 1

    def bcast_obj(self, obj: Any, root: int = 0) -> Generator:
        """Binomial-tree broadcast of a small object."""
        tag = self._next_tag()
        n = self.size
        vrank = (self.rank - root) % n
        mask = 1
        while mask < n:
            if vrank & mask:
                src = (self.rank - mask) % n
                obj = yield from self.recv_obj(src, tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < n and not (vrank & mask):
                dest = (self.rank + mask) % n
                yield from self.send_obj(obj, dest, tag)
            mask >>= 1
        return obj

    def reduce_obj(self, value: Any, op: Callable[[Any, Any], Any],
                   root: int = 0) -> Generator:
        """Binomial-tree reduction of small values."""
        tag = self._next_tag()
        n = self.size
        vrank = (self.rank - root) % n
        mask = 1
        while mask < n:
            if vrank & mask:
                dest = (self.rank - mask) % n
                yield from self.send_obj(value, dest, tag)
                return None
            partner = vrank + mask
            if partner < n:
                src = (self.rank + mask) % n
                other = yield from self.recv_obj(src, tag)
                value = op(value, other)
            mask *= 2
        return value if self.rank == root else None

    def allreduce_obj(self, value: Any,
                      op: Callable[[Any, Any], Any]) -> Generator:
        reduced = yield from self.reduce_obj(value, op, root=0)
        result = yield from self.bcast_obj(reduced, root=0)
        return result

    def gather_obj(self, value: Any, root: int = 0) -> Generator:
        tag = self._next_tag()
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = value
            for _ in range(self.size - 1):
                src_val = yield from self.recv_obj(ANY_SOURCE, tag)
                src, val = src_val
                out[src] = val
            return out
        yield from self.send_obj((self.rank, value), root, tag)
        return None

    def alltoall_buffers(self, send_region: Region, recv_region: Region,
                         block_bytes: int) -> Generator:
        """Pairwise-exchange all-to-all of equal blocks (FT's transpose).

        ``send_region``/``recv_region`` are laid out as ``size`` blocks of
        ``block_bytes`` each; block *i* goes to rank *i*.
        """
        tag = self._next_tag()
        n, rank = self.size, self.rank
        # local copy
        recv_region.buffer[rank * block_bytes:(rank + 1) * block_bytes] = \
            send_region.buffer[rank * block_bytes:(rank + 1) * block_bytes]
        recv_region.touch(rank * block_bytes, block_bytes)
        for phase in range(1, n):
            partner = rank ^ phase if (n & (n - 1)) == 0 \
                else (rank + phase) % n
            recv_partner = partner if (n & (n - 1)) == 0 \
                else (rank - phase) % n
            sreq = self.isend(send_region, partner * block_bytes,
                              block_bytes, partner, tag + phase)
            rreq = self.irecv(recv_region, recv_partner * block_bytes,
                              block_bytes, recv_partner, tag + phase)
            yield sreq
            yield rreq

    def sendrecv(self, send_region: Region, send_off: int, send_n: int,
                 dest: int, recv_region: Region, recv_off: int, recv_n: int,
                 source: int, tag: int = 0) -> Generator:
        """Simultaneous send+receive (halo exchanges)."""
        sreq = self.isend(send_region, send_off, send_n, dest, tag)
        rreq = self.irecv(recv_region, recv_off, recv_n, source, tag)
        yield sreq
        yield rreq
