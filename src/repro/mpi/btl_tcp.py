"""TCP byte-transfer layer: the same BTL interface as :class:`IbBtl`, over
plain sockets.  Used for natively-Ethernet MPI runs (debug clusters without
InfiniBand); the RDMA put is emulated by a data frame the receiver's stack
writes into the exposed buffer address."""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Generator, Optional

from ..dmtcp.process import AppContext
from ..memory import Region
from ..net.tcp import TcpStack

__all__ = ["TcpBtl"]

TCP_BTL_PORT_BASE = 26000
_FRAME = 96.0


class _FakeMr:
    """The TCP BTL has no memory registration; expose a null rkey."""

    rkey = 0
    lkey = 0


class TcpBtl:
    """One rank's TCP endpoint (drop-in for IbBtl)."""

    def __init__(self, ctx: AppContext, rank: int, size: int):
        self.ctx = ctx
        self.rank = rank
        self.size = size
        self.on_control: Optional[Callable[[int, dict], None]] = None
        self._conns: Dict[int, Any] = {}
        self._listener = None
        self.peer_dir: Dict[int, str] = {}
        self._mr = _FakeMr()

    def start(self, peer_dir: Dict[int, str]) -> None:
        self.peer_dir = peer_dir
        stack = TcpStack.of(self.ctx.proc.node)
        self._listener = stack.listen(TCP_BTL_PORT_BASE + self.rank)
        self.ctx.proc.spawn_thread(self._accept_loop(),
                                   name=f"{self.ctx.name}.tcpbtl.accept")

    def stop(self) -> None:
        pass

    def mr_for(self, region: Region) -> _FakeMr:
        return self._mr

    def connect(self, peer: int) -> Generator:
        conn = self._conns.get(peer)
        if conn is not None:
            return conn
        stack = TcpStack.of(self.ctx.proc.node)
        conn = yield from stack.connect(self.peer_dir[peer],
                                        TCP_BTL_PORT_BASE + peer)
        yield from conn.send({"kind": "hello", "rank": self.rank})
        self._bind(peer, conn)
        return conn

    def _accept_loop(self) -> Generator:
        while True:
            conn = yield self._listener.accept()
            hello = yield conn.recv()
            self._bind(hello["rank"], conn)

    def _bind(self, peer: int, conn) -> None:
        self._conns[peer] = conn
        self.ctx.proc.spawn_thread(self._rx_loop(peer, conn),
                                   name=f"{self.ctx.name}.tcpbtl.rx{peer}")

    def _rx_loop(self, peer: int, conn) -> Generator:
        while True:
            frame = yield conn.recv()
            if frame["kind"] == "data":
                self.ctx.memory.write(frame["raddr"], frame["payload"])
                if self.on_control is not None:
                    self.on_control(peer, {"kind": "fin",
                                           "rts": frame["rts"]})
            elif self.on_control is not None:
                self.on_control(peer, frame)

    def send_control(self, peer: int, msg: dict,
                     signaled: bool = False) -> Generator:
        conn = self._conns.get(peer)
        if conn is None:
            conn = yield from self.connect(peer)
        size = _FRAME + len(pickle.dumps(msg))
        yield from conn.send(msg, size=size)

    def rdma_put(self, peer: int, region: Region, offset: int,
                 nbytes: int, rts_id: int, raddr: int,
                 rkey: int) -> Generator:
        conn = self._conns[peer]
        payload = self.ctx.memory.read(region.addr + offset, nbytes)
        logical = nbytes * region.repr_scale
        yield from conn.send({"kind": "data", "raddr": raddr,
                              "rts": rts_id, "payload": payload},
                             size=_FRAME + logical)
        # TCP is reliable and ordered: hand-off to the stack completes the
        # local send (the FIN the receiver synthesizes completes its recv)
