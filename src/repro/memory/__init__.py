"""User-space memory model: address spaces, regions, pinning, snapshots."""

from .address_space import (CHUNK_BYTES, PAGE_SIZE, AddressSpace,
                            MemoryError_, Region, TrackedView,
                            chunk_diff_mask)

__all__ = ["CHUNK_BYTES", "PAGE_SIZE", "AddressSpace", "MemoryError_",
           "Region", "TrackedView", "chunk_diff_mask"]
