"""User-space memory model: address spaces, regions, pinning, snapshots."""

from .address_space import PAGE_SIZE, AddressSpace, MemoryError_, Region

__all__ = ["PAGE_SIZE", "AddressSpace", "MemoryError_", "Region"]
