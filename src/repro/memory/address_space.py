"""Explicit user-space memory model.

DMTCP's job is to copy and restore all of user-space memory.  Real processes
get this from the kernel's mmap table; our simulated processes keep their
data in an :class:`AddressSpace` — a table of named, virtually-addressed
regions backed by real ``bytearray`` storage.  NumPy views over a region are
writable and stay valid across a checkpoint/restore cycle because restore
copies bytes *into the existing backing buffers* (the analogue of DMTCP
restoring memory at the original virtual addresses).

Scaled experiments: a region may declare ``repr_scale`` — "this region stands
for ``repr_scale`` times its actual byte length on the paper's testbed".
Actual data movement and checksums use the real bytes; time/size accounting
in the benchmark harness uses the logical (scaled) size.

Dirty tracking (incremental checkpoints, DESIGN.md §8/§13): every region
carries a monotonically increasing ``generation`` plus a per-chunk
generation array at :data:`CHUNK_BYTES` granularity (the store's chunk
size).  All mutation avenues must bump them — :meth:`AddressSpace.write`
and :meth:`AddressSpace.restore` do so for the byte ranges they touch, and
code that slices ``region.buffer`` directly calls :meth:`Region.touch`
(whole-region without arguments, or with an ``(offset, length)`` span).
:meth:`Region.as_ndarray` additionally marks the region ``views_leaked``:
once an uninterposed writable view escapes, the buffer can mutate without
a bump, so generation equality no longer proves unchanged bytes and
checkpoints fall back to a vectorized chunk-level byte comparison.
:meth:`Region.view` is the interposed alternative: a :class:`TrackedView`
behaves like an ndarray but routes every write through ``touch`` with the
write's byte span, so hot mutation loops dirty only the chunks they wrote.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

try:  # numpy >= 2.0 moved byte_bounds out of the top-level namespace
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - numpy < 2.0
    _byte_bounds = np.byte_bounds

__all__ = ["AddressSpace", "Region", "TrackedView", "MemoryError_",
           "PAGE_SIZE", "CHUNK_BYTES"]

PAGE_SIZE = 4096
#: dirty-tracking and store-chunk granularity (one simulated page): the
#: per-region chunk bitmap, the capture's clean-chunk reuse, and the
#: content-addressed store all slice regions at this size
CHUNK_BYTES = PAGE_SIZE
_BASE_ADDR = 0x1000_0000


class MemoryError_(RuntimeError):
    """Simulated segfault / mapping error (named to avoid shadowing the
    builtin ``MemoryError``)."""


@dataclass
class Region:
    """One contiguous mapping."""

    name: str
    addr: int
    size: int
    buffer: bytearray
    repr_scale: float = 1.0
    pin_count: int = 0
    tag: str = ""  # e.g. "heap", "stack", "driver-data"
    #: bumped on every tracked mutation; an incremental checkpoint may skip
    #: a region whose generation it has already captured (unless views
    #: leaked — see module docstring)
    generation: int = 0
    #: a writable ndarray view escaped: generation equality no longer
    #: proves the bytes are unchanged
    views_leaked: bool = False
    _hash_gen: int = field(default=-1, repr=False, compare=False)
    _hash: Optional[bytes] = field(default=None, repr=False, compare=False)
    _chunk_gens: Optional[np.ndarray] = field(default=None, repr=False,
                                              compare=False)
    _chunk_hashes: Optional[list] = field(default=None, repr=False,
                                          compare=False)
    _chunk_hash_gens: Optional[np.ndarray] = field(default=None, repr=False,
                                                   compare=False)

    @property
    def end(self) -> int:
        return self.addr + self.size

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    @property
    def logical_size(self) -> float:
        """Size this region stands for on the paper's testbed (bytes)."""
        return self.size * self.repr_scale

    @property
    def n_chunks(self) -> int:
        return -(-self.size // CHUNK_BYTES)

    @property
    def chunk_gens(self) -> np.ndarray:
        """Per-chunk generation stamps (lazily allocated): chunk ``i`` was
        last mutated at region generation ``chunk_gens[i]``."""
        if self._chunk_gens is None or len(self._chunk_gens) != self.n_chunks:
            self._chunk_gens = np.zeros(self.n_chunks, dtype=np.int64)
        return self._chunk_gens

    def touch(self, offset: int = 0, length: Optional[int] = None) -> None:
        """Record a mutation (any code writing ``buffer`` directly must
        call this — or the next incremental checkpoint may skip it).

        Without arguments the whole region is marked dirty (the safe,
        conservative call); with ``(offset, length)`` only the chunks
        overlapping that byte span are, which is what lets chunk-level
        incremental capture skip the rest of the region.
        """
        self.generation += 1
        gens = self.chunk_gens
        if length is None:
            gens[:] = self.generation
        elif length > 0:
            lo = max(0, offset) // CHUNK_BYTES
            hi = min(self.n_chunks, -(-(offset + length) // CHUNK_BYTES))
            gens[lo:hi] = self.generation

    def as_ndarray(self, dtype="uint8", shape=None) -> np.ndarray:
        """A writable NumPy view over the region's bytes.

        Escaping a raw writable view poisons dirty tracking (every chunk
        must be assumed mutable at any time); prefer :meth:`view` for hot
        mutation loops so writes dirty only the chunks they touch.
        """
        self.touch()
        self.views_leaked = True
        arr = np.frombuffer(self.buffer, dtype=dtype)
        if shape is not None:
            arr = arr.reshape(shape)
        return arr

    def view(self, dtype="uint8", shape=None) -> "TrackedView":
        """A write-interposed view: ndarray semantics, but every write is
        routed through :meth:`touch` with the written byte span, so the
        region stays precisely tracked (no ``views_leaked`` poisoning)."""
        arr = np.frombuffer(self.buffer, dtype=dtype)
        if shape is not None:
            arr = arr.reshape(shape)
        return TrackedView(self, arr)

    def chunk_hashes(self) -> List[bytes]:
        """Per-chunk blake2b-16 digests of the current bytes.

        Cached per chunk while provably valid: a chunk is only re-hashed
        when its generation stamp moved since the digest was computed.
        With leaked writable views no cache can be trusted, so every
        chunk is re-hashed on every call.
        """
        n = self.n_chunks
        gens = self.chunk_gens
        if self._chunk_hashes is None or len(self._chunk_hashes) != n:
            self._chunk_hashes = [None] * n
            self._chunk_hash_gens = np.full(n, -1, dtype=np.int64)
        hashes = self._chunk_hashes
        hash_gens = self._chunk_hash_gens
        if self.views_leaked:
            stale = range(n)
        else:
            # vectorized staleness test: one array compare replaces the
            # per-chunk Python loop.  Fresh digests have stamp -1, never a
            # valid generation, so "stamp != gen" covers both "never
            # hashed" and "mutated since hashed".  All-clean (the common
            # incremental-capture case) returns without touching a chunk.
            stale_mask = hash_gens != gens
            if not stale_mask.any():
                return list(hashes)
            stale = np.nonzero(stale_mask)[0].tolist()
        buf = memoryview(self.buffer)
        blake2b = hashlib.blake2b
        for i in stale:
            lo = i * CHUNK_BYTES
            hashes[i] = blake2b(
                buf[lo: lo + CHUNK_BYTES], digest_size=16).digest()
            hash_gens[i] = gens[i]
        return list(hashes)

    def content_hash(self) -> bytes:
        """Digest of the current bytes, cached while provably valid.

        The cache is only trusted when no writable view has leaked (every
        mutation then goes through :meth:`touch`); with leaked views the
        digest is recomputed on every call.
        """
        if self.views_leaked or self._hash_gen != self.generation \
                or self._hash is None:
            self._hash = hashlib.blake2b(self.buffer,
                                         digest_size=16).digest()
            self._hash_gen = self.generation
        return self._hash

    def contains(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.end


def chunk_diff_mask(cur, prev) -> np.ndarray:
    """Boolean dirty mask at :data:`CHUNK_BYTES` granularity from a
    vectorized byte compare of two equal-length buffers.

    This is the fallback for regions whose per-chunk generations can't be
    trusted (leaked views, or a prior image captured before chunk
    tracking existed): one numpy-batched pass over the bytes replaces
    per-chunk hashing, and the resulting mask feeds the same clean-chunk
    reuse path as the generation bitmap.
    """
    n = len(cur)
    if len(prev) != n:
        raise ValueError("chunk_diff_mask: buffer lengths differ")
    nchunks = -(-n // CHUNK_BYTES)
    mask = np.zeros(nchunks, dtype=bool)
    full = n // CHUNK_BYTES
    if full:
        a = np.frombuffer(memoryview(cur)[: full * CHUNK_BYTES],
                          dtype=np.uint8)
        b = np.frombuffer(memoryview(prev)[: full * CHUNK_BYTES],
                          dtype=np.uint8)
        mask[:full] = (a.reshape(full, CHUNK_BYTES)
                       != b.reshape(full, CHUNK_BYTES)).any(axis=1)
    if nchunks > full:
        mask[full] = bytes(cur[full * CHUNK_BYTES:]) \
            != bytes(prev[full * CHUNK_BYTES:])
    return mask


class TrackedView:
    """An ndarray facade over a :class:`Region` that keeps dirty tracking
    precise: reads hand out read-only views, writes go through
    ``__setitem__``/in-place operators which mark the written byte span
    via :meth:`Region.touch` before mutating the buffer.

    The logical contract with capture: every buffer byte a TrackedView
    can change is covered by a ``touch`` of (at least) the chunks it
    lands in — so an unchanged per-chunk generation still proves
    unchanged bytes, unlike :meth:`Region.as_ndarray` whose escaped
    writable views force ``views_leaked``.  Writes through keys numpy
    resolves to copies (fancy/boolean indexing) conservatively mark the
    whole view's span.
    """

    __slots__ = ("_region", "_arr", "_base")

    def __init__(self, region: Region, arr: np.ndarray):
        self._region = region
        self._arr = arr
        self._base = _byte_bounds(
            np.frombuffer(region.buffer, dtype=np.uint8))[0]

    # -- span marking -------------------------------------------------------

    def _mark_span(self, sub: np.ndarray) -> None:
        lo, hi = _byte_bounds(sub)
        self._region.touch(lo - self._base, hi - lo)

    def _mark(self, key) -> None:
        arr = self._arr
        if isinstance(key, (int, np.integer)):
            k = int(key)
            if k < 0:
                k += arr.shape[0]
            sub = arr[k: k + 1]
        else:
            try:
                sub = arr[key]
            except Exception:
                sub = arr
            if not (isinstance(sub, np.ndarray) and sub.size
                    and np.may_share_memory(sub, arr)):
                # scalar element, or a key numpy resolves to a copy
                # (fancy/boolean index): fall back to the whole span
                sub = arr
        self._mark_span(sub)

    # -- reads --------------------------------------------------------------

    def _ro(self) -> np.ndarray:
        arr = self._arr.view()
        arr.setflags(write=False)
        return arr

    def __getitem__(self, key):
        sub = self._arr[key]
        if isinstance(sub, np.ndarray):
            sub = sub.view()
            sub.setflags(write=False)
        return sub

    def __array__(self, dtype=None, copy=None):
        arr = self._ro()
        if dtype is not None and arr.dtype != np.dtype(dtype):
            arr = arr.astype(dtype)
        elif copy:
            arr = arr.copy()
        return arr

    def __len__(self) -> int:
        return len(self._arr)

    def __abs__(self) -> np.ndarray:
        return abs(self._ro())

    def __eq__(self, other):
        return self._ro() == other

    __hash__ = None

    def __add__(self, other):
        return self._ro() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._ro() - other

    def __rsub__(self, other):
        return other - self._ro()

    def __mul__(self, other):
        return self._ro() * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._ro() / other

    def __rtruediv__(self, other):
        return other / self._ro()

    def __mod__(self, other):
        return self._ro() % other

    def __getattr__(self, name):
        # reductions/introspection (sum, min, shape, dtype, nbytes, ...)
        # resolve against a read-only view so they can't sidestep marking
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._ro(), name)

    # -- writes -------------------------------------------------------------

    def __setitem__(self, key, value) -> None:
        self._mark(key)
        if isinstance(value, TrackedView):
            value = value._ro()
        self._arr[key] = value

    def _inplace(self, op, other) -> "TrackedView":
        self._mark_span(self._arr)
        if isinstance(other, TrackedView):
            other = other._ro()
        op(other)
        return self

    def __iadd__(self, other):
        return self._inplace(self._arr.__iadd__, other)

    def __isub__(self, other):
        return self._inplace(self._arr.__isub__, other)

    def __imul__(self, other):
        return self._inplace(self._arr.__imul__, other)

    def __itruediv__(self, other):
        return self._inplace(self._arr.__itruediv__, other)

    # -- derived tracked views ----------------------------------------------

    def reshape(self, *shape) -> "TrackedView":
        return TrackedView(self._region, self._arr.reshape(*shape))

    def subview(self, key) -> "TrackedView":
        """A TrackedView over a sub-slice (stays write-interposed, unlike
        ``__getitem__`` which returns read-only data)."""
        sub = self._arr[key]
        if not (isinstance(sub, np.ndarray)
                and np.may_share_memory(sub, self._arr)):
            raise ValueError(
                "subview requires a key that resolves to a view")
        return TrackedView(self._region, sub)


class AddressSpace:
    """The mmap table of one simulated process."""

    def __init__(self, name: str = "proc"):
        self.name = name
        self._regions: Dict[int, Region] = {}
        self._next_addr = _BASE_ADDR
        self._by_name: Dict[str, Region] = {}
        # address-sorted index for O(log n) region_at (read/write/pin all
        # route through it); _starts[i] is _ordered[i].addr
        self._starts: List[int] = []
        self._ordered: List[Region] = []

    # -- mapping ------------------------------------------------------------

    def _index_add(self, region: Region) -> None:
        i = bisect_right(self._starts, region.addr)
        self._starts.insert(i, region.addr)
        self._ordered.insert(i, region)

    def _index_remove(self, region: Region) -> None:
        i = bisect_right(self._starts, region.addr) - 1
        if 0 <= i < len(self._ordered) and self._ordered[i] is region:
            del self._starts[i]
            del self._ordered[i]

    def mmap(self, name: str, size: int, repr_scale: float = 1.0,
             tag: str = "", data: Optional[bytes] = None) -> Region:
        """Map a new zero-filled (or ``data``-initialised) region."""
        if size <= 0:
            raise MemoryError_(f"mmap size must be positive, got {size}")
        if name in self._by_name:
            raise MemoryError_(f"region name {name!r} already mapped")
        pages = -(-size // PAGE_SIZE)
        addr = self._next_addr
        self._next_addr += pages * PAGE_SIZE + PAGE_SIZE  # guard page
        buf = bytearray(size)
        if data is not None:
            if len(data) > size:
                raise MemoryError_("initial data larger than region")
            buf[: len(data)] = data
        region = Region(name=name, addr=addr, size=size, buffer=buf,
                        repr_scale=repr_scale, tag=tag)
        self._regions[addr] = region
        self._by_name[name] = region
        self._index_add(region)
        return region

    def ensure(self, name: str, size: int, repr_scale: float = 1.0,
               tag: str = "") -> Region:
        """Map ``name`` if absent, else adopt the existing mapping.

        Restart-aware allocation: code that runs both at first launch and
        again after a checkpoint image was restored into this address space
        (which re-creates the original regions) uses this instead of
        :meth:`mmap` so the second run adopts the restored region — and its
        restored bytes — rather than segfaulting on a duplicate mapping.
        The size must match the restored region's exactly.
        """
        region = self._by_name.get(name)
        if region is None:
            return self.mmap(name, size, repr_scale=repr_scale, tag=tag)
        if region.size != size:
            raise MemoryError_(
                f"ensure({name!r}): existing region is {region.size} bytes, "
                f"requested {size}")
        region.repr_scale = repr_scale
        return region

    def munmap(self, region: Region) -> None:
        if region.pinned:
            raise MemoryError_(f"cannot unmap pinned region {region.name!r}")
        if self._regions.pop(region.addr, None) is None:
            raise MemoryError_(f"region {region.name!r} not mapped")
        del self._by_name[region.name]
        self._index_remove(region)

    def region_at(self, addr: int, length: int = 1) -> Region:
        """The region containing [addr, addr+length), else simulated SEGV.

        Bisect over the sorted start addresses: the only candidate is the
        rightmost region starting at or below ``addr`` (mappings never
        overlap); an access straddling its end — or landing in a guard
        page — segfaults exactly as the old linear scan did.
        """
        i = bisect_right(self._starts, addr) - 1
        if i >= 0:
            region = self._ordered[i]
            if region.contains(addr, length):
                return region
        raise MemoryError_(
            f"segfault: [{addr:#x}, {addr + length:#x}) not mapped in "
            f"{self.name}")

    def region(self, name: str) -> Region:
        try:
            return self._by_name[name]
        except KeyError:
            raise MemoryError_(f"no region named {name!r}") from None

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions.values())

    def __len__(self) -> int:
        return len(self._regions)

    # -- pinning (memory registration support) -------------------------------

    def pin(self, addr: int, length: int) -> Region:
        region = self.region_at(addr, length)
        region.pin_count += 1
        return region

    def unpin(self, addr: int, length: int) -> None:
        region = self.region_at(addr, length)
        if region.pin_count <= 0:
            raise MemoryError_(f"unpin of unpinned region {region.name!r}")
        region.pin_count -= 1

    # -- raw access (used by the simulated HCA's DMA engine) ----------------

    def read(self, addr: int, length: int) -> bytes:
        region = self.region_at(addr, length)
        off = addr - region.addr
        return bytes(region.buffer[off: off + length])

    def write(self, addr: int, data: bytes) -> None:
        region = self.region_at(addr, len(data))
        off = addr - region.addr
        region.buffer[off: off + len(data)] = data
        region.touch(off, len(data))

    # -- accounting ----------------------------------------------------------

    @property
    def next_addr(self) -> int:
        """The next free mapping address (recorded in snapshots)."""
        return self._next_addr

    @property
    def total_bytes(self) -> int:
        return sum(r.size for r in self._regions.values())

    @property
    def logical_bytes(self) -> float:
        return sum(r.logical_size for r in self._regions.values())

    # -- snapshot / restore (what a checkpoint image stores) -----------------

    @staticmethod
    def snapshot_region(region: Region) -> dict:
        """Deep copy of one region's mapping entry and contents."""
        return {
            "name": region.name,
            "addr": region.addr,
            "size": region.size,
            "repr_scale": region.repr_scale,
            "tag": region.tag,
            "data": bytes(region.buffer),
        }

    def snapshot(self) -> dict:
        """A deep copy of the full mapping table and contents."""
        return {
            "name": self.name,
            "next_addr": self._next_addr,
            "regions": [self.snapshot_region(r)
                        for r in self._regions.values()],
        }

    def restore(self, snap: dict) -> None:
        """Restore contents *in place*.

        Regions present in the snapshot are re-created at their original
        addresses if missing, and their bytes overwritten in the existing
        backing buffers if present — so live NumPy views (the analogue of
        pointers held on thread stacks) keep working.  Regions mapped after
        the snapshot was taken are unmapped.  Pin counts reset to zero: a
        freshly restarted process has no pinned memory (§4 of the paper).
        """
        snap_addrs = {r["addr"] for r in snap["regions"]}
        for region in [r for r in self._regions.values()
                       if r.addr not in snap_addrs]:
            region.pin_count = 0
            self.munmap(region)
        for rsnap in snap["regions"]:
            existing = self._regions.get(rsnap["addr"])
            if existing is None:
                existing = Region(
                    name=rsnap["name"], addr=rsnap["addr"],
                    size=rsnap["size"], buffer=bytearray(rsnap["size"]),
                    repr_scale=rsnap["repr_scale"], tag=rsnap["tag"])
                self._regions[existing.addr] = existing
                self._by_name[existing.name] = existing
                self._index_add(existing)
            if existing.size != rsnap["size"]:
                raise MemoryError_(
                    f"region {existing.name!r} size changed since snapshot")
            existing.buffer[:] = rsnap["data"]
            existing.pin_count = 0
            existing.touch()
        self._next_addr = max(self._next_addr, snap["next_addr"])
