"""BLCR kernel-module checkpointer + Open MPI checkpoint-restart service
(the paper's baseline)."""

from .blcr import BlcrCheckpointer, BlcrError, BlcrKernelMismatchError
from .ompi_crs import CrsQuiesceTimeout, OmpiCrsSession, ompi_crs_launch

__all__ = [
    "BlcrCheckpointer",
    "BlcrError",
    "BlcrKernelMismatchError",
    "CrsQuiesceTimeout",
    "OmpiCrsSession",
    "ompi_crs_launch",
]
