"""BLCR: Berkeley Lab Checkpoint/Restart, the kernel-module baseline.

BLCR checkpoints a *single node's* processes from inside the kernel.  Two
properties matter for the paper's comparison:

* it knows nothing about the network, so a distributed checkpoint must
  tear the InfiniBand connections down first (the MPI checkpoint-restart
  services' job — see :mod:`.ompi_crs`);
* the kernel module ties the image to the kernel version: restart on a
  different kernel fails (§1, drawback 3 — the motivation for IB2TCP's
  debug-cluster story).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..dmtcp.image import CheckpointImage
from ..hardware.node import Node, ProcessHost

__all__ = ["BlcrCheckpointer", "BlcrError", "BlcrKernelMismatchError"]


class BlcrError(RuntimeError):
    pass


class BlcrKernelMismatchError(BlcrError):
    """Restart attempted on a node running a different Linux kernel."""


class BlcrCheckpointer:
    """The cr_checkpoint / cr_restart pair for one node."""

    def __init__(self, node: Node):
        self.node = node
        # the kernel module must match the running kernel at load time —
        # always true here, recorded for the restart check
        self.kernel_version = node.kernel_version

    def checkpoint(self, host: ProcessHost, path: str,
                   disk_kind: str = "local",
                   header_bytes: float = 4096.0) -> Generator:
        """Process generator: capture ``host``'s memory into an image file
        (no gzip — BLCR writes raw pages).  Returns the image."""
        for region in host.memory:
            if region.pinned:
                raise BlcrError(
                    f"cannot checkpoint pinned (DMA-registered) memory "
                    f"region {region.name!r}: tear down the network first")
        image = CheckpointImage.capture(
            proc_name=host.name, pid=host.pid,
            kernel_version=self.kernel_version, hca_vendor=None,
            memory=host.memory, gzip=False, checkpointer="blcr",
            header_bytes=header_bytes)
        disk = self.node.disk(disk_kind)
        yield from disk.write(path, image.to_bytes(),
                              logical_size=image.logical_size)
        return image

    def restart(self, target_node: Node, image: CheckpointImage,
                host: ProcessHost) -> None:
        """cr_restart: restore ``image`` into ``host`` on ``target_node``.

        Raises :class:`BlcrKernelMismatchError` unless the target runs the
        same kernel the image was taken under."""
        if image.checkpointer != "blcr":
            raise BlcrError("not a BLCR image")
        if target_node.kernel_version != image.kernel_version:
            raise BlcrKernelMismatchError(
                f"image taken under kernel {image.kernel_version!r}, "
                f"node runs {target_node.kernel_version!r}")
        image.restore_memory(host.memory)
