"""The Open MPI checkpoint-restart service (CRCP + FileM) around BLCR —
the baseline the paper compares against in §6.2 / Table 6.

The four-step recipe the paper describes (§1): (i) quiesce MPI traffic via
the CRCP bookmark protocol; (ii) tear down every InfiniBand connection and
deregister pinned memory (BLCR cannot checkpoint either); (iii) have BLCR
checkpoint each node in isolation; (iv) rebuild the network.  On top, the
FileM stage copies every local image to one central node — which
"serializes part of the parallel checkpoint" and is why BLCR checkpoint
times stay flat or grow with the process count while DMTCP's shrink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Sequence

from ..dmtcp.costs import CostModel, DEFAULT_COSTS
from ..dmtcp.image import CheckpointImage
from ..dmtcp.launcher import AppSpec, NativeSession
from ..dmtcp.process import AppContext
from ..hardware.cluster import Cluster
from .blcr import BlcrCheckpointer

__all__ = ["OmpiCrsSession", "ompi_crs_launch", "CrsQuiesceTimeout"]


class CrsQuiesceTimeout(RuntimeError):
    """The CRCP bookmark protocol could not drain MPI traffic (e.g. a
    rendezvous whose receive was never posted)."""


@dataclass
class CrsCheckpointStats:
    wall_seconds: float
    local_write_seconds: float
    filem_seconds: float
    images: List[CheckpointImage]

    @property
    def total_logical_bytes(self) -> float:
        return sum(img.logical_size for img in self.images)


class OmpiCrsSession:
    """A natively-launched MPI job wrapped by the CR service."""

    def __init__(self, cluster: Cluster, session: NativeSession,
                 costs: CostModel = DEFAULT_COSTS):
        self.cluster = cluster
        self.session = session
        self.costs = costs
        self.env = session.env
        self.central_node = cluster.nodes[0]

    def wait(self) -> Generator:
        return self.session.wait()

    # -- the four-step checkpoint ------------------------------------------------

    def checkpoint(self, ckpt_dir: str = "/tmp",
                   quiesce_timeout: float = 30.0) -> Generator:
        env = self.env
        t0 = env.now
        ctxs = self.session.appctxs

        # (i) CRCP quiesce: freeze application threads at MPI boundaries,
        # let the library's progress/helper threads drain in-flight traffic
        for ctx in ctxs:
            for thread in ctx.proc.threads:
                if thread.name.endswith(".main") and thread.is_alive:
                    thread.suspend()
        yield env.timeout(self.costs.crcp_quiesce_base)  # bookmark exchange
        deadline = env.now + quiesce_timeout
        while any(ctx.btl.pending_traffic() or ctx.comm.pending_transfers()
                  for ctx in ctxs):
            if env.now > deadline:
                raise CrsQuiesceTimeout(
                    "MPI traffic did not drain; BLCR cannot proceed")
            yield env.timeout(1e-3)

        # (ii) tear down the InfiniBand connections + pinned memory
        for ctx in ctxs:
            for thread in ctx.proc.threads:
                if thread.is_alive and not thread.suspended:
                    thread.suspend()
            ctx.btl.crs_teardown()

        # (iii) BLCR checkpoints every node in isolation (parallel; each
        # node's disk serializes its own processes)
        writes = []
        images: Dict[str, CheckpointImage] = {}

        def one(ctx: AppContext):
            blcr = BlcrCheckpointer(ctx.proc.node)
            image = yield from blcr.checkpoint(
                ctx.proc, f"{ckpt_dir}/blcr_{ctx.name}.ckpt")
            images[ctx.name] = image

        for ctx in ctxs:
            writes.append(env.process(one(ctx), name=f"blcr.{ctx.name}"))
        yield env.all_of(writes)
        t_local = env.now - t0

        # (iv-a) FileM: copy all images to the central node, serialized
        # through its NIC / the coordinator process
        central_fs = self.central_node.local_disk.fs
        for ctx in ctxs:
            image = images[ctx.name]
            yield env.timeout(self.costs.ompi_filem_per_image
                              + image.logical_size / self.costs.ompi_filem_bw)
            central_fs.store(f"{ckpt_dir}/central/blcr_{ctx.name}.ckpt",
                             image.to_bytes(), image.logical_size)
        t_filem = env.now - t0 - t_local

        # (iv-b) rebuild the network and continue (QPs reconnect lazily)
        for ctx in ctxs:
            ctx.btl.crs_rebuild()
        for ctx in ctxs:
            for thread in ctx.proc.threads:
                if thread.is_alive and thread.suspended:
                    thread.unsuspend()
            ctx.btl.kick_progress()

        return CrsCheckpointStats(
            wall_seconds=env.now - t0, local_write_seconds=t_local,
            filem_seconds=t_filem, images=list(images.values()))


def ompi_crs_launch(cluster: Cluster, specs: Sequence[AppSpec],
                    costs: CostModel = DEFAULT_COSTS) -> OmpiCrsSession:
    """Launch an MPI job under the CR service (adds its runtime taxes)."""
    from ..dmtcp.launcher import native_launch

    wrapped_specs = []
    for spec in specs:

        def factory(ctx: AppContext, spec=spec) -> Generator:
            ctx.proc.compute_tax = costs.crs_compute_tax
            yield ctx.proc.compute(seconds=costs.crs_startup)
            return (yield from spec.factory(ctx))

        wrapped_specs.append(AppSpec(node_index=spec.node_index,
                                     name=spec.name, factory=factory,
                                     rank=spec.rank))
    session = native_launch(cluster, wrapped_specs)
    return OmpiCrsSession(cluster, session, costs)
