"""The paper's contributions: the InfiniBand checkpoint-restart plugin and
the IB2TCP migration plugin."""

from .ib2tcp import Ib2TcpPlugin
from .ib_plugin import InfinibandPlugin

__all__ = ["Ib2TcpPlugin", "InfinibandPlugin"]
