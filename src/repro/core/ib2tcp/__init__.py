"""IB2TCP: checkpoint on InfiniBand, restart on Ethernet (paper §6.4)."""

from .plugin import Ib2TcpError, Ib2TcpPlugin

__all__ = ["Ib2TcpError", "Ib2TcpPlugin"]
