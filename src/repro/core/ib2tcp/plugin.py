"""The IB2TCP plugin (paper §6.4): checkpoint over InfiniBand, restart over
Ethernet/TCP.

Loaded next to the InfiniBand plugin (``InfinibandPlugin(fallback=
Ib2TcpPlugin())``).  While the job runs over InfiniBand it only adds the
in-memory copy overhead the paper measures (Table 8, DMTCP/IB2TCP/IB row).
When a restart lands on a node with no HCA, the InfiniBand plugin delegates:
IB2TCP re-plumbs every virtual queue pair onto a TCP connection and emulates
the verbs data path — send/recv, RDMA read/write, immediate data — against
the same virtual structs the application has been holding all along.  The
debug cluster may run a different Linux kernel: nothing here cares.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ...dmtcp.plugin import Plugin
from ...ibverbs.enums import SendFlags, WcOpcode, WcStatus, WrOpcode
from ...ibverbs.structs import ibv_recv_wr, ibv_send_wr, ibv_wc
from ...net.tcp import TcpStack
from ..ib_plugin.shadow import VirtualCq, VirtualQp, VirtualSrq

__all__ = ["Ib2TcpPlugin", "Ib2TcpError"]

IB2TCP_BASE_PORT = 19000
_FRAME_OVERHEAD = 96.0


class Ib2TcpError(RuntimeError):
    pass


class Ib2TcpPlugin(Plugin):
    """Verbs-over-TCP emulation for post-restart execution on Ethernet."""

    name = "ib2tcp"

    def __init__(self):
        super().__init__()
        self.ib = None                  # adopting InfinibandPlugin
        self.active = False
        self.listener = None
        self.port: Optional[int] = None
        self._conn_by_vqp: Dict[int, Any] = {}       # vqpn -> Connection
        self._conn_ready: Dict[int, Any] = {}        # vqpn -> sim Event
        self._txq_by_vqp: Dict[int, Any] = {}        # vqpn -> Store
        self._recvq: Dict[int, List[ibv_recv_wr]] = {}   # vqpn -> posted wqes
        self._srq_recvq: Dict[int, List[ibv_recv_wr]] = {}
        self._unexpected: Dict[int, List[dict]] = {}     # vqpn -> frames
        self._pending_acks: Dict[int, Tuple] = {}        # msn -> info
        self._msn = 0
        self.stats = {"frames_tx": 0, "frames_rx": 0, "bytes_tx": 0.0}

    # -- adoption (called by InfinibandPlugin at restart-on-Ethernet) -----------

    def adopt(self, ib_plugin) -> None:
        self.ib = ib_plugin
        self.appctx = ib_plugin.appctx
        self.active = True
        proc = self.appctx.proc
        stack = TcpStack.of(proc.node)
        self.port = IB2TCP_BASE_PORT + (proc.pid % 20000)
        self.listener = stack.listen(self.port)
        proc.spawn_thread(self._accept_loop(), name=f"{self.name}.accept")

    # -- name service ------------------------------------------------------------

    def ns_publish(self) -> Dict[str, Any]:
        entries: Dict[str, Any] = {}
        host = self.appctx.proc.node.name
        for vqp in self.ib.qps:
            vlid = vqp.vpd.vcontext.vlid
            entries[f"ep:{vlid}/{vqp.qp_num}"] = {
                "host": host, "port": self.port}
        return entries

    def ns_receive(self, db: Dict[str, Any]) -> None:
        self.db = db

    def remap_evidence(self) -> Dict[str, bool]:
        """The adopted InfiniBand plugin's re-virtualization evidence,
        plus whether every connected queue pair was re-plumbed onto a TCP
        endpoint (the §6.4 claim: same virtual ids, new transport)."""
        evidence = self.ib.remap_evidence() if self.ib is not None else {
            "qps_remapped": False, "mrs_remapped": False,
            "lids_remapped": False}
        connected = [vqp for vqp in (self.ib.qps if self.ib else ())
                     if vqp.remote_vqpn is not None]
        evidence["qps_replumbed"] = self.active and bool(connected) and all(
            vqp.qp_num in self._txq_by_vqp for vqp in connected)
        return evidence

    # -- restart replay ---------------------------------------------------------------

    def restart_replay(self) -> None:
        """Connect queue pairs over TCP and re-post the logged WQEs."""
        proc = self.appctx.proc
        for vqp in self.ib.qps:
            if vqp.remote_vqpn is None:
                continue
            self._recvq.setdefault(vqp.qp_num, [])
            self._txq_by_vqp[vqp.qp_num] = _Queue(self.appctx.env)
            self._conn_ready[vqp.qp_num] = self.appctx.env.event()
            local = (vqp.vpd.vcontext.vlid, vqp.qp_num)
            remote = (vqp.remote_vlid, vqp.remote_vqpn)
            if local < remote:
                proc.spawn_thread(self._connector(vqp),
                                  name=f"{self.name}.connect.{vqp.qp_num}")
            proc.spawn_thread(self._tx_loop(vqp),
                              name=f"{self.name}.tx.{vqp.qp_num}")
        # Principle 3/6 replay, now onto TCP
        for vsrq in self.ib.srqs:
            for entry in vsrq.recv_log:
                self.post_srq_recv(vsrq, entry.wr.copy())
        for vqp in self.ib.qps:
            for entry in vqp.recv_log:
                self.post_recv(vqp, entry.wr.copy())
        for vqp in self.ib.qps:
            for entry in vqp.send_log:
                self.post_send(vqp, entry.wr.copy())

    def drain_round(self) -> int:
        # further checkpoints on the Ethernet cluster are out of scope for
        # the paper's IB2TCP evaluation; the network is TCP-quiesced anyway
        return 0

    # -- connection management -------------------------------------------------------

    def _connector(self, vqp: VirtualQp) -> Generator:
        ep = self.db.get(f"ep:{vqp.remote_vlid}/{vqp.remote_vqpn}")
        if ep is None:
            raise Ib2TcpError(
                f"no IB2TCP endpoint published for virtual qp "
                f"{vqp.remote_vlid}/{vqp.remote_vqpn}")
        stack = TcpStack.of(self.appctx.proc.node)
        conn = yield from stack.connect(ep["host"], ep["port"])
        yield from conn.send({"kind": "hello",
                              "to_vqpn": vqp.remote_vqpn,
                              "from": (vqp.vpd.vcontext.vlid, vqp.qp_num)})
        self._bind_conn(vqp.qp_num, conn)

    def _accept_loop(self) -> Generator:
        while True:
            conn = yield self.listener.accept()
            hello = yield conn.recv()
            assert hello["kind"] == "hello", hello
            self._bind_conn(hello["to_vqpn"], conn)

    def _bind_conn(self, vqpn: int, conn) -> None:
        self._conn_by_vqp[vqpn] = conn
        ready = self._conn_ready.get(vqpn)
        if ready is not None and not ready.triggered:
            ready.succeed()
        self.appctx.proc.spawn_thread(self._rx_loop(vqpn, conn),
                                      name=f"{self.name}.rx.{vqpn}")

    # -- data path: posting --------------------------------------------------------------

    def post_send(self, vqp: VirtualQp, wr: ibv_send_wr) -> None:
        logical = sum(s.length * self._scale(s.addr, s.length)
                      for s in wr.sg_list)
        self._msn += 1
        msn = self._msn
        signaled = vqp.sq_sig_all or bool(wr.send_flags & SendFlags.SIGNALED)
        suppress = wr.opcode is WrOpcode.RDMA_WRITE_WITH_IMM
        payload = b"".join(self.appctx.memory.read(s.addr, s.length)
                           for s in wr.sg_list)
        if wr.opcode in (WrOpcode.SEND, WrOpcode.SEND_WITH_IMM):
            frame = {"kind": "send", "to_vqpn": vqp.remote_vqpn, "msn": msn,
                     "payload": payload, "logical": logical,
                     "imm": wr.imm_data
                     if wr.opcode is WrOpcode.SEND_WITH_IMM else None}
            opcode = WcOpcode.SEND
        elif wr.opcode in (WrOpcode.RDMA_WRITE, WrOpcode.RDMA_WRITE_WITH_IMM):
            frame = {"kind": "rdma_write", "to_vqpn": vqp.remote_vqpn,
                     "msn": msn, "payload": payload, "logical": logical,
                     "vrkey": wr.rkey, "remote_addr": wr.remote_addr,
                     "imm": wr.imm_data
                     if wr.opcode is WrOpcode.RDMA_WRITE_WITH_IMM else None}
            opcode = WcOpcode.RDMA_WRITE
        elif wr.opcode is WrOpcode.RDMA_READ:
            frame = {"kind": "rdma_read_req", "to_vqpn": vqp.remote_vqpn,
                     "msn": msn, "vrkey": wr.rkey,
                     "remote_addr": wr.remote_addr,
                     "length": sum(s.length for s in wr.sg_list),
                     "logical": _FRAME_OVERHEAD}
            opcode = WcOpcode.RDMA_READ
        else:
            raise Ib2TcpError(f"unsupported opcode {wr.opcode}")
        self._pending_acks[msn] = (vqp, wr, signaled and not suppress, opcode)
        self._txq_by_vqp[vqp.qp_num].put(frame)

    def post_recv(self, vqp: VirtualQp, wr: ibv_recv_wr) -> None:
        queue = self._recvq.setdefault(vqp.qp_num, [])
        queue.append(wr)
        self._match_unexpected(vqp)

    def post_srq_recv(self, vsrq: VirtualSrq, wr: ibv_recv_wr) -> None:
        self._srq_recvq.setdefault(id(vsrq), []).append(wr)

    # -- data path: transmit / receive loops -------------------------------------------------

    def _tx_loop(self, vqp: VirtualQp) -> Generator:
        env = self.appctx.env
        costs = self.ib.costs
        yield self._conn_ready[vqp.qp_num]
        conn = self._conn_by_vqp[vqp.qp_num]
        queue = self._txq_by_vqp[vqp.qp_num]
        while True:
            frame = yield queue.get()
            logical = frame.get("logical", _FRAME_OVERHEAD)
            # the in-memory copy + kernel TCP inefficiency the paper blames
            # for the ~0.1 Gbit/s Ethernet rate (Table 8)
            yield env.timeout(logical * costs.ib2tcp_tcp_per_byte)
            yield from conn.send(frame, size=logical + _FRAME_OVERHEAD)
            self.stats["frames_tx"] += 1
            self.stats["bytes_tx"] += logical

    def _rx_loop(self, vqpn: int, conn) -> Generator:
        while True:
            frame = yield conn.recv()
            self.stats["frames_rx"] += 1
            self._handle_frame(vqpn, frame)

    # -- frame handling --------------------------------------------------------------------------

    def _vqp(self, vqpn: int) -> VirtualQp:
        return self.ib.vqp_by_vqpn[vqpn]

    def _scale(self, addr: int, length: int) -> float:
        region = self.appctx.memory.region_at(addr, length)
        return region.repr_scale

    def _handle_frame(self, vqpn: int, frame: dict) -> None:
        kind = frame["kind"]
        vqp = self._vqp(vqpn)
        if kind == "send":
            queue = self._recvq.setdefault(vqpn, [])
            srq_q = (self._srq_recvq.get(id(vqp.vsrq))
                     if vqp.vsrq is not None else None)
            if srq_q:
                wqe = srq_q.pop(0)
            elif queue:
                wqe = queue.pop(0)
            else:
                self._unexpected.setdefault(vqpn, []).append(frame)
                return
            self._deliver_send(vqp, wqe, frame)
        elif kind == "rdma_write":
            self._apply_rdma_write(vqp, frame)
        elif kind == "rdma_read_req":
            data = self.appctx.memory.read(frame["remote_addr"],
                                           frame["length"])
            logical = frame["length"] * self._scale(frame["remote_addr"],
                                                    frame["length"])
            self._txq_by_vqp[vqpn].put(
                {"kind": "rdma_read_resp", "msn": frame["msn"],
                 "payload": data, "logical": logical})
        elif kind == "rdma_read_resp":
            entry = self._pending_acks.pop(frame["msn"], None)
            if entry is None:
                return
            pvqp, wr, signaled, opcode = entry
            offset = 0
            for sge in wr.sg_list:
                chunk = frame["payload"][offset: offset + sge.length]
                self.appctx.memory.write(sge.addr, chunk)
                offset += len(chunk)
            if signaled:
                self._push_wc(pvqp.vsend_cq, ibv_wc(
                    wr_id=wr.wr_id, status=WcStatus.SUCCESS, opcode=opcode,
                    byte_len=int(frame["logical"]), qp_num=pvqp.qp_num))
        elif kind == "ack":
            entry = self._pending_acks.pop(frame["msn"], None)
            if entry is None:
                return
            pvqp, wr, signaled, opcode = entry
            if signaled:
                self._push_wc(pvqp.vsend_cq, ibv_wc(
                    wr_id=wr.wr_id, status=WcStatus.SUCCESS, opcode=opcode,
                    byte_len=int(frame.get("byte_len", 0)),
                    qp_num=pvqp.qp_num))

    def _match_unexpected(self, vqp: VirtualQp) -> None:
        frames = self._unexpected.get(vqp.qp_num)
        queue = self._recvq.get(vqp.qp_num)
        while frames and queue:
            self._deliver_send(vqp, queue.pop(0), frames.pop(0))

    def _deliver_send(self, vqp: VirtualQp, wqe: ibv_recv_wr,
                      frame: dict) -> None:
        offset = 0
        for sge in wqe.sg_list:
            chunk = frame["payload"][offset: offset + sge.length]
            self.appctx.memory.write(sge.addr, chunk)
            offset += len(chunk)
        self._push_wc(vqp.vrecv_cq, ibv_wc(
            wr_id=wqe.wr_id, status=WcStatus.SUCCESS, opcode=WcOpcode.RECV,
            byte_len=int(frame["logical"]), imm_data=frame.get("imm"),
            qp_num=vqp.qp_num, src_qp=vqp.remote_vqpn or 0))
        self._ack(vqp, frame)

    def _apply_rdma_write(self, vqp: VirtualQp, frame: dict) -> None:
        # validate the virtual rkey against our own registered regions
        vmr = next((m for m in self.ib.mrs if m.rkey == frame["vrkey"]), None)
        if vmr is None or not (vmr.addr <= frame["remote_addr"] and
                               frame["remote_addr"] + len(frame["payload"])
                               <= vmr.addr + vmr.length):
            return  # drop (a NAK path is not needed for the evaluation)
        self.appctx.memory.write(frame["remote_addr"], frame["payload"])
        if frame.get("imm") is not None:
            queue = self._recvq.setdefault(vqp.qp_num, [])
            if queue:
                wqe = queue.pop(0)
                self._push_wc(vqp.vrecv_cq, ibv_wc(
                    wr_id=wqe.wr_id, status=WcStatus.SUCCESS,
                    opcode=WcOpcode.RECV_RDMA_WITH_IMM,
                    byte_len=int(frame["logical"]),
                    imm_data=frame["imm"], qp_num=vqp.qp_num))
        self._ack(vqp, frame)

    def _ack(self, vqp: VirtualQp, frame: dict) -> None:
        self._txq_by_vqp[vqp.qp_num].put(
            {"kind": "ack", "msn": frame["msn"],
             "byte_len": frame.get("logical", 0.0),
             "logical": _FRAME_OVERHEAD})

    def _push_wc(self, vcq: VirtualCq, wc: ibv_wc) -> None:
        vcq.private_queue.append(wc)
        if vcq.pending_notify is not None \
                and not vcq.pending_notify.triggered:
            evt, vcq.pending_notify = vcq.pending_notify, None
            evt.succeed()


class _Queue:
    """Tiny Store wrapper so tx loops survive before connections exist."""

    def __init__(self, env):
        from ...sim import Store

        self._store = Store(env)

    def put(self, item) -> None:
        self._store.put(item)

    def get(self):
        return self._store.get()
