"""The InfiniBand DMTCP plugin — the paper's primary contribution (§3).

Lifecycle:

* **launch** — :meth:`install` interposes :class:`WrappedVerbs` over the
  real library; virtual ids equal real ids (§3.2: translation is trivial
  before the first restart).
* **checkpoint** — after user threads quiesce, :meth:`drain_round` empties
  every real completion queue into per-CQ private queues (Principle 4),
  repeating under the coordinator's global settle protocol until the whole
  job is quiet; WRITE_CKPT then discards send-log entries that can never
  produce a local completion (§4's immediate/inline case).
* **resume** — nothing to do: private queues are served first (Principle 5)
  and the hardware state is untouched.
* **restart** — RESTART re-creates every resource against the new node's
  hardware (new real ids); the checkpoint manager then runs the
  publish/subscribe exchange (§3.2.1-§3.2.2); RESTART_REPLAY replays the
  modify_qp logs and re-posts every logged WQE (Principles 3 and 6 — data
  is re-sent only here, from restored memory).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ...dmtcp.costs import CostModel, DEFAULT_COSTS
from ...dmtcp.events import DmtcpEvent
from ...dmtcp.plugin import Plugin
from ...ibverbs.enums import AccessFlags, QpAttrMask, QpType, WcOpcode
from ...ibverbs.structs import ibv_qp_init_attr, ibv_sge, ibv_wc
from .errors import (
    HeterogeneousDriverError,
    NoInfinibandError,
    UnsupportedQpTypeError,
    VirtualIdConflictError,
    WqeLogError,
)
from .shadow import (
    VirtualContext,
    VirtualCq,
    VirtualMr,
    VirtualPd,
    VirtualQp,
    VirtualSrq,
)
from .wrappers import WrappedVerbs

_RECV_OPCODES = (WcOpcode.RECV, WcOpcode.RECV_RDMA_WITH_IMM)

__all__ = ["InfinibandPlugin"]


def _pd_key(guid) -> str:
    return f"{guid[0]}/{guid[1]}"


class InfinibandPlugin(Plugin):
    """DMTCP plugin for transparent checkpoint-restart over InfiniBand."""

    name = "infiniband"

    #: opt-in runtime invariant checker (``repro.analysis.protocol``);
    #: installed class-wide by ``install_monitor`` so tests and the chaos
    #: harness validate the QP state machine, WQE-log balance, and per-PD
    #: rkey translation on every run.  ``None`` costs one attribute read.
    monitor = None

    #: opt-in lifecycle tracer (``repro.obs.trace``); installed class-wide
    #: by ``install_tracer``, same contract as ``monitor``: drain rounds,
    #: CQ refill hits, WQE replay re-posts, and the id re-exchange emit
    #: timeline records when a tracer is attached.
    tracer = None

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 allow_driver_reload: bool = False,
                 globally_unique_vids: bool = False,
                 fallback: Optional[Plugin] = None):
        super().__init__()
        self.costs = costs
        self.allow_driver_reload = allow_driver_reload
        self.globally_unique_vids = globally_unique_vids
        self.fallback = fallback          # e.g. the IB2TCP plugin
        self.delegated = False            # True once fallback took over
        self.real_lib = None
        self.wrapped = WrappedVerbs(self)
        # registry of live virtual resources (Figure 2's "plugin internal
        # resources"), in creation order for faithful re-creation
        self.contexts: List[VirtualContext] = []
        self.pds: List[VirtualPd] = []
        self.mrs: List[VirtualMr] = []
        self.cqs: List[VirtualCq] = []
        self.srqs: List[VirtualSrq] = []
        self.qps: List[VirtualQp] = []
        # translation tables (§3.2)
        self.vqp_by_vqpn: Dict[int, VirtualQp] = {}
        self.vqp_by_real_qpn: Dict[int, VirtualQp] = {}
        self.vmr_by_vlkey: Dict[int, VirtualMr] = {}
        self.db: Dict[str, Any] = {}      # published ids after restart
        self._remote_real_to_vqpn: Dict[int, int] = {}
        self.restarted = False
        self._pd_counter = 0
        self._vid_counter = 0
        self.stats = {"wrapper_calls": 0, "drained_completions": 0,
                      "reposted_sends": 0, "reposted_recvs": 0,
                      "replayed_modifies": 0}

    # -- installation ------------------------------------------------------------

    def install(self, appctx) -> None:
        super().install(appctx)
        self.real_lib = appctx.proc.libs["ibverbs"]
        appctx.proc.libs["ibverbs"] = self.wrapped

    def charge_wrapper(self, nbytes: float = 0.0) -> None:
        self.stats["wrapper_calls"] += 1
        self.appctx.proc.overhead_debt += self.costs.wrapper_cost(nbytes)

    def charge_ib2tcp_copy(self, nbytes: float) -> None:
        """Extra in-memory copy the IB2TCP plugin performs on every post
        while loaded (§6.4.1) — charged even before any restart."""
        if self.fallback is not None:
            self.appctx.proc.overhead_debt += (
                self.costs.ib2tcp_copy_per_call
                + self.costs.ib2tcp_copy_per_byte * nbytes)

    # -- registry ------------------------------------------------------------------

    def registry_add(self, vobj) -> None:
        {VirtualContext: self.contexts, VirtualPd: self.pds,
         VirtualMr: self.mrs, VirtualCq: self.cqs,
         VirtualSrq: self.srqs, VirtualQp: self.qps}[type(vobj)].append(vobj)

    def registry_remove(self, vobj) -> None:
        bucket = {VirtualContext: self.contexts, VirtualPd: self.pds,
                  VirtualMr: self.mrs, VirtualCq: self.cqs,
                  VirtualSrq: self.srqs, VirtualQp: self.qps}[type(vobj)]
        if vobj in bucket:
            bucket.remove(vobj)
        if isinstance(vobj, VirtualQp):
            self.vqp_by_vqpn.pop(vobj.qp_num, None)
            if vobj.real is not None:
                self.vqp_by_real_qpn.pop(vobj.real.qp_num, None)
        elif isinstance(vobj, VirtualMr):
            self.vmr_by_vlkey.pop(vobj.lkey, None)

    # -- resource creation (called from WrappedVerbs) -----------------------------

    def open_device(self, device) -> VirtualContext:
        real = self.real_lib.open_device(device)
        vctx = VirtualContext(real=real, device_name=device.name,
                              vendor=device.vendor, real_ops=real.ops)
        # Principle 2: the ops table handed to the application holds the
        # plugin's function pointers
        vctx.ops.post_send = self.wrapped.ops_post_send
        vctx.ops.post_recv = self.wrapped.ops_post_recv
        vctx.ops.post_srq_recv = self.wrapped.ops_post_srq_recv
        vctx.ops.poll_cq = self.wrapped.ops_poll_cq
        vctx.ops.req_notify_cq = self.wrapped.ops_req_notify_cq
        self.registry_add(vctx)
        return vctx

    def alloc_pd(self, vctx: VirtualContext) -> VirtualPd:
        real = self.real_lib.alloc_pd(vctx.real)
        guid = (self.appctx.name, self._pd_counter)
        self._pd_counter += 1
        vpd = VirtualPd(real=real, vcontext=vctx, guid=guid)
        self.registry_add(vpd)
        return vpd

    def _alloc_virtual_id(self, real_id: int, table: Dict[int, Any]) -> int:
        """Virtual id policy: identical to the real id at creation (§3.2),
        unless that would collide after a restart — §7's conflict — in
        which case ``globally_unique_vids`` switches to a private range."""
        if real_id not in table:
            return real_id
        if not self.globally_unique_vids:
            raise VirtualIdConflictError(
                f"real id {real_id:#x} assigned after restart collides "
                "with a live virtual id (paper §7)")
        self._vid_counter += 1
        return (abs(hash(self.appctx.name)) % 0xFFFF << 32) \
            | self._vid_counter

    def reg_mr(self, vpd: VirtualPd, addr: int, length: int,
               access) -> VirtualMr:
        if access is None:
            access = AccessFlags.LOCAL_WRITE
        real = self.real_lib.reg_mr(vpd.real, addr, length, access)
        vlkey = self._alloc_virtual_id(real.lkey, self.vmr_by_vlkey)
        vrkey = real.rkey if vlkey == real.lkey else vlkey + 1
        vmr = VirtualMr(real=real, vpd=vpd, addr=addr, length=length,
                        access=access, lkey=vlkey, rkey=vrkey)
        self.vmr_by_vlkey[vlkey] = vmr
        self.registry_add(vmr)
        return vmr

    def create_qp(self, vpd: VirtualPd,
                  init_attr: ibv_qp_init_attr) -> VirtualQp:
        vsend, vrecv = init_attr.send_cq, init_attr.recv_cq
        vsrq = init_attr.srq
        real_attr = ibv_qp_init_attr(
            send_cq=vsend.real, recv_cq=vrecv.real,
            srq=vsrq.real if vsrq is not None else None,
            qp_type=init_attr.qp_type, sq_sig_all=init_attr.sq_sig_all,
            max_send_wr=init_attr.max_send_wr,
            max_recv_wr=init_attr.max_recv_wr,
            max_inline_data=init_attr.max_inline_data)
        real = self.real_lib.create_qp(vpd.real, real_attr)
        vqpn = self._alloc_virtual_id(real.qp_num, self.vqp_by_vqpn)
        vqp = VirtualQp(real=real, vpd=vpd, qp_num=vqpn,
                        qp_type=init_attr.qp_type, vsend_cq=vsend,
                        vrecv_cq=vrecv, vsrq=vsrq,
                        sq_sig_all=init_attr.sq_sig_all,
                        max_send_wr=init_attr.max_send_wr,
                        max_recv_wr=init_attr.max_recv_wr,
                        max_inline_data=init_attr.max_inline_data)
        self.vqp_by_vqpn[vqpn] = vqp
        self.vqp_by_real_qpn[real.qp_num] = vqp
        self.registry_add(vqp)
        if self.monitor is not None:
            self.monitor.on_create_qp(vqp)
        return vqp

    # -- id translation (§3.2) ------------------------------------------------------

    def translate_sge(self, sge: ibv_sge) -> ibv_sge:
        vmr = self.vmr_by_vlkey.get(sge.lkey)
        real_lkey = vmr.real.lkey if vmr is not None else sge.lkey
        return ibv_sge(addr=sge.addr, length=sge.length, lkey=real_lkey)

    def translate_rkey(self, vqp: VirtualQp, vrkey: int) -> int:
        """(virtual qp, vrkey) → real rkey via the remote pd (§3.2.2):
        the local virtual qp determines the remote virtual qp, whose
        published tuple carries the globally-unique pd; (pd, vrkey) then
        resolves to the real rkey."""
        if not self.restarted:
            return vrkey  # trivial before the first restart
        qinfo = self.db.get(f"qp:{vqp.remote_vlid}/{vqp.remote_vqpn}")
        rkey = None if qinfo is None \
            else self.db.get(f"mr:{qinfo['pd']}:{vrkey}")
        if self.monitor is not None:
            self.monitor.on_translate_rkey(self, vqp, vrkey, qinfo, rkey)
        return vrkey if rkey is None else rkey

    def translate_qp_attr(self, attr, mask: QpAttrMask,
                          vqp: Optional[VirtualQp] = None):
        real_attr = attr.copy()
        if self.restarted:
            if mask & QpAttrMask.DEST_QPN:
                vlid = attr.dlid if mask & QpAttrMask.AV else (
                    vqp.remote_vlid if vqp is not None else None)
                qinfo = self.db.get(f"qp:{vlid}/{attr.dest_qp_num}")
                if qinfo is not None:
                    real_attr.dest_qp_num = qinfo["qpn"]
            if mask & QpAttrMask.AV:
                real_lid = self.db.get(f"lid:{attr.dlid}")
                if real_lid is not None:
                    real_attr.dlid = real_lid
        return real_attr

    def translate_wc(self, wc: ibv_wc) -> ibv_wc:
        """Real completion → what the application is allowed to see."""
        vqp = self.vqp_by_real_qpn.get(wc.qp_num)
        vqpn = vqp.qp_num if vqp is not None else wc.qp_num
        src = wc.src_qp
        if self.restarted and src:
            src = self._remote_real_to_vqpn.get(src, src)
        return ibv_wc(wr_id=wc.wr_id, status=wc.status, opcode=wc.opcode,
                      byte_len=wc.byte_len, imm_data=wc.imm_data,
                      qp_num=vqpn, src_qp=src, wc_flags=wc.wc_flags)

    # -- Principle 3 bookkeeping -------------------------------------------------------

    def bookkeep_completion(self, wc: ibv_wc) -> None:
        """A polled completion destroys its logged WQE — O(1) against the
        wr_id-indexed :class:`~.shadow.WqeLog`."""
        vqp = self.vqp_by_real_qpn.get(wc.qp_num)
        if vqp is None:
            return
        try:
            if wc.opcode in _RECV_OPCODES:
                log = vqp.vsrq.recv_log if vqp.vsrq is not None \
                    else vqp.recv_log
                log.complete_recv(wc.wr_id)
            else:
                # send completions are ordered: a signaled completion
                # implies every earlier (possibly unsignaled) WQE on the
                # QP completed
                vqp.send_log.complete_send_upto(wc.wr_id)
        except WqeLogError:
            if self.monitor is not None:
                self.monitor.on_orphan_completion(vqp, wc)
            raise
        if self.monitor is not None:
            self.monitor.on_completion(vqp, wc)

    # -- Principles 4/5: drain and refill ----------------------------------------------

    def drain_round(self) -> int:
        if self.delegated:
            return self.fallback.drain_round()
        drained = 0
        for vcq in self.cqs:
            while True:
                wcs = vcq.context.real_ops.poll_cq(vcq.real, 64)
                if not wcs:
                    break
                for wc in wcs:
                    self.bookkeep_completion(wc)
                    vcq.private_queue.append(self.translate_wc(wc))
                drained += len(wcs)
        self.stats["drained_completions"] += drained
        if self.tracer is not None:
            self.tracer.emit("drain.round", self.appctx.name,
                             self.appctx.env.now, drained=drained,
                             cqs=len(self.cqs))
        return drained

    def arm_notify(self, vcq: VirtualCq):
        """Wrapped req_notify: fires on private-queue content or real CQ
        activity; restart re-arms it against the re-created CQ."""
        env = self.appctx.env
        evt = env.event()
        if vcq.private_queue:
            evt.succeed()
            return evt
        vcq.pending_notify = evt
        if not self.delegated:
            self._chain_notify(vcq)
        return evt

    def _chain_notify(self, vcq: VirtualCq) -> None:
        evt = vcq.pending_notify
        if evt is None or evt.triggered:
            return
        real_evt = self.real_lib.req_notify_cq(vcq.real)

        def fire(_e):
            if vcq.pending_notify is evt and not evt.triggered:
                vcq.pending_notify = None
                evt.succeed()

        if real_evt.callbacks is None:
            fire(real_evt)
        else:
            real_evt.callbacks.append(fire)

    # -- event hooks -----------------------------------------------------------------------

    def event(self, event: DmtcpEvent, data: Any = None) -> None:
        if event is DmtcpEvent.PRESUSPEND:
            for vqp in self.qps:
                if vqp.qp_type is QpType.UD:
                    raise UnsupportedQpTypeError(
                        "cannot checkpoint a UD queue pair (§4)")
        elif event is DmtcpEvent.WRITE_CKPT:
            # §4: immediate/inline RDMA posts generate no local completion;
            # after the global settle the drain protocol assumes them done
            for vqp in self.qps:
                vqp.send_log.retain(
                    lambda e: not e.assume_complete_on_drain)
            if self.monitor is not None:
                self.monitor.on_write_ckpt(self)
        elif event is DmtcpEvent.RESTART:
            self._restart_recreate()
        elif event is DmtcpEvent.RESTART_REPLAY:
            self._restart_replay()

    def image_metadata(self) -> Dict[str, Any]:
        if self.contexts:
            return {"hca_vendor": self.contexts[0].vendor}
        return {}

    def remap_evidence(self) -> Dict[str, bool]:
        """Did the id re-virtualization actually happen after a restart?
        True per class only when every live virtual object now fronts a
        *different* real id than the one the application saw it under —
        the §3.2.1 transparency evidence the fault harness and the
        migration sweep both assert on."""
        return {
            "qps_remapped": bool(self.qps) and all(
                vqp.qp_num != vqp.real.qp_num for vqp in self.qps),
            "mrs_remapped": bool(self.mrs) and all(
                vmr.rkey != vmr.real.rkey for vmr in self.mrs),
            "lids_remapped": bool(self.contexts) and all(
                vctx.vlid != vctx.real_lid for vctx in self.contexts),
        }

    # -- restart phase 1: recreate resources -------------------------------------------------

    def _restart_recreate(self) -> None:
        self.restarted = True
        new_lib = self.appctx.proc.libs["ibverbs"]
        devices = new_lib.get_device_list()
        if not devices:
            if self.fallback is not None:
                self.delegated = True
                self.real_lib = new_lib
                self.appctx.proc.libs["ibverbs"] = self.wrapped
                self.fallback.adopt(self)
                return
            raise NoInfinibandError(
                "restart node has no HCA and no IB2TCP fallback")
        device = devices[0]
        self.real_lib = new_lib
        self.appctx.proc.libs["ibverbs"] = self.wrapped
        for vctx in self.contexts:
            if device.vendor != vctx.vendor:
                if not self.allow_driver_reload:
                    raise HeterogeneousDriverError(
                        f"image embeds the {vctx.vendor!r} user-space "
                        f"driver but the restart node has "
                        f"{device.vendor!r} (§4); pass "
                        "allow_driver_reload=True for the §7 re-load path")
                vctx.vendor = device.vendor
            real = new_lib.open_device(device)
            vctx.real = real
            vctx.real_ops = real.ops
            vctx.device_name = device.name
            vctx.real_lid = new_lib.query_port(real).lid
        for vpd in self.pds:
            vpd.real = new_lib.alloc_pd(vpd.vcontext.real)
        for vmr in self.mrs:
            vmr.real = new_lib.reg_mr(vmr.vpd.real, vmr.addr, vmr.length,
                                      vmr.access)
        for vcq in self.cqs:
            vcq.real = new_lib.create_cq(vcq.vcontext.real, vcq.cqe)
        for vsrq in self.srqs:
            vsrq.real = new_lib.create_srq(vsrq.vpd.real, vsrq.max_wr)
            for limit in vsrq.modify_log:
                new_lib.modify_srq(vsrq.real, limit)
        self.vqp_by_real_qpn.clear()
        for vqp in self.qps:
            real_attr = ibv_qp_init_attr(
                send_cq=vqp.vsend_cq.real, recv_cq=vqp.vrecv_cq.real,
                srq=vqp.vsrq.real if vqp.vsrq is not None else None,
                qp_type=vqp.qp_type, sq_sig_all=vqp.sq_sig_all,
                max_send_wr=vqp.max_send_wr, max_recv_wr=vqp.max_recv_wr,
                max_inline_data=vqp.max_inline_data)
            vqp.real = new_lib.create_qp(vqp.vpd.real, real_attr)
            self.vqp_by_real_qpn[vqp.real.qp_num] = vqp

    # -- publish/subscribe (§3.2.1) ---------------------------------------------------------

    def ns_publish(self) -> Dict[str, Any]:
        if self.delegated:
            return self.fallback.ns_publish()
        entries: Dict[str, Any] = {}
        for vctx in self.contexts:
            entries[f"lid:{vctx.vlid}"] = vctx.real_lid
        for vqp in self.qps:
            vlid = vqp.vpd.vcontext.vlid
            entries[f"qp:{vlid}/{vqp.qp_num}"] = {
                "pd": _pd_key(vqp.vpd.guid), "qpn": vqp.real.qp_num}
        for vmr in self.mrs:
            entries[f"mr:{_pd_key(vmr.vpd.guid)}:{vmr.rkey}"] = \
                vmr.real.rkey
        if self.tracer is not None:
            self.tracer.emit("ns.publish", self.appctx.name,
                             self.appctx.env.now, entries=len(entries))
        return entries

    def ns_receive(self, db: Dict[str, Any]) -> None:
        if self.delegated:
            self.fallback.ns_receive(db)
            return
        self.db = db
        self._remote_real_to_vqpn = {
            info["qpn"]: int(key.split("/", 1)[1])
            for key, info in db.items() if key.startswith("qp:")}
        if self.tracer is not None:
            self.tracer.emit("ns.receive", self.appctx.name,
                             self.appctx.env.now, entries=len(db))

    # -- restart phase 2: replay (Principles 3 and 6) ------------------------------------------

    def _restart_replay(self) -> None:
        if self.delegated:
            self.fallback.restart_replay()
            return
        m = self.monitor
        if m is not None:
            m.on_replay_begin(self)
        tracer = self.tracer
        replay_span = None
        reposted_before = (self.stats["reposted_recvs"]
                           + self.stats["reposted_sends"])
        if tracer is not None:
            # the surviving logged set this replay must re-post exactly
            expected = sum(len(vsrq.recv_log) for vsrq in self.srqs) \
                + sum(len(vqp.recv_log) + len(vqp.send_log)
                      for vqp in self.qps)
            replay_span = tracer.begin(
                "replay", self.appctx.name, self.appctx.env.now,
                expected=expected,
                modifies=sum(len(vqp.modify_log) for vqp in self.qps))
        for vqp in self.qps:
            for attr, mask in vqp.modify_log:
                if m is not None:
                    m.on_replay_modify(vqp, attr, mask)
                self.real_lib.modify_qp(
                    vqp.real, self.translate_qp_attr(attr, mask, vqp), mask)
                self.stats["replayed_modifies"] += 1
        for vsrq in self.srqs:
            for entry in vsrq.recv_log:
                self.real_lib.post_srq_recv(
                    vsrq.real, self.wrapped._translate_recv_wr(entry.wr))
                self.stats["reposted_recvs"] += 1
                if m is not None:
                    m.on_repost(vsrq, "recv")
        for vqp in self.qps:
            for entry in vqp.recv_log:
                vqp.context.real_ops.post_recv(
                    vqp.real, self.wrapped._translate_recv_wr(entry.wr))
                self.stats["reposted_recvs"] += 1
                if m is not None:
                    m.on_repost(vqp, "recv")
        for vqp in self.qps:
            for entry in vqp.send_log:
                vqp.context.real_ops.post_send(
                    vqp.real,
                    self.wrapped._translate_send_wr(vqp, entry.wr))
                self.stats["reposted_sends"] += 1
                if m is not None:
                    m.on_repost(vqp, "send")
        if m is not None:
            m.on_replay_done(self)
        if tracer is not None:
            expected_now = sum(len(vsrq.recv_log) for vsrq in self.srqs) \
                + sum(len(vqp.recv_log) + len(vqp.send_log)
                      for vqp in self.qps)
            tracer.end(replay_span, self.appctx.env.now,
                       expected=expected_now,
                       reposts=(self.stats["reposted_recvs"]
                                + self.stats["reposted_sends"]
                                - reposted_before))
        for vcq in self.cqs:
            if vcq.private_queue and vcq.pending_notify is not None \
                    and not vcq.pending_notify.triggered:
                evt, vcq.pending_notify = vcq.pending_notify, None
                evt.succeed()
            elif vcq.pending_notify is not None:
                self._chain_notify(vcq)  # re-arm on the new real CQ
