"""The interposition layer: a drop-in replacement for ``VerbsLib``.

``dmtcp_launch`` swaps this object into the process's library table, so
application code calls it exactly as it would call the real library (the
LD_PRELOAD analogue).  Every entry:

* translates virtual structs/ids to real ones before calling down
  (Principle 1), going through the saved real ``ops`` pointers for the
  "inline" functions (Principle 2);
* records posts and queue-pair modifications in the shadow logs
  (Principle 3);
* serves drained completions from the plugin's private queue before ever
  touching the real completion queue (Principle 5);
* charges the interposition overhead that shows up as the paper's 0.8-1.7%
  runtime tax.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, List, Optional

from ...ibverbs.enums import (
    QpAttrMask,
    QpType,
    SendFlags,
    WcOpcode,
    WrOpcode,
)
from ...ibverbs.structs import (
    VerbsError,
    ibv_port_attr,
    ibv_qp_init_attr,
    ibv_recv_wr,
    ibv_send_wr,
    ibv_sge,
    ibv_wc,
)
from .errors import UnsupportedQpTypeError
from .shadow import (
    RecvLogEntry,
    SendLogEntry,
    VirtualContext,
    VirtualCq,
    VirtualMr,
    VirtualPd,
    VirtualQp,
    VirtualSrq,
)

if TYPE_CHECKING:  # pragma: no cover
    from .plugin import InfinibandPlugin

_RECV_OPCODES = (WcOpcode.RECV, WcOpcode.RECV_RDMA_WITH_IMM)

__all__ = ["WrappedVerbs"]


class WrappedVerbs:
    """The application-facing verbs library under DMTCP."""

    def __init__(self, plugin: "InfinibandPlugin"):
        self.plugin = plugin

    # -- helpers -------------------------------------------------------------

    def _charge(self, nbytes: float = 0.0) -> None:
        self.plugin.charge_wrapper(nbytes)

    @property
    def _real(self):
        return self.plugin.real_lib

    # -- devices ------------------------------------------------------------------

    def get_device_list(self):
        self._charge()
        return self._real.get_device_list()

    def open_device(self, device) -> VirtualContext:
        self._charge()
        return self.plugin.open_device(device)

    def close_device(self, vctx: VirtualContext) -> None:
        self._charge()
        self._real.close_device(vctx.real)
        self.plugin.registry_remove(vctx)

    def query_port(self, vctx: VirtualContext,
                   port_num: int = 1) -> ibv_port_attr:
        """The application sees the *virtual* lid — frozen at first query,
        stable across restarts even though the real lid changes (§3.2)."""
        self._charge()
        attr = self._real.query_port(vctx.real, port_num)
        vctx.real_lid = attr.lid
        if vctx.vlid == 0:
            vctx.vlid = attr.lid
        return ibv_port_attr(lid=vctx.vlid, state=attr.state,
                             max_mtu=attr.max_mtu)

    # -- pds / mrs -----------------------------------------------------------------

    def alloc_pd(self, vctx: VirtualContext) -> VirtualPd:
        self._charge()
        return self.plugin.alloc_pd(vctx)

    def dealloc_pd(self, vpd: VirtualPd) -> None:
        self._charge()
        self._real.dealloc_pd(vpd.real)
        self.plugin.registry_remove(vpd)

    def reg_mr(self, vpd: VirtualPd, addr: int, length: int,
               access=None) -> VirtualMr:
        self._charge()
        return self.plugin.reg_mr(vpd, addr, length, access)

    def dereg_mr(self, vmr: VirtualMr) -> None:
        self._charge()
        self._real.dereg_mr(vmr.real)
        self.plugin.registry_remove(vmr)

    # -- cqs --------------------------------------------------------------------------

    def create_cq(self, vctx: VirtualContext, cqe: int = 4096) -> VirtualCq:
        self._charge()
        real = self._real.create_cq(vctx.real, cqe)
        vcq = VirtualCq(real=real, vcontext=vctx, cqe=cqe)
        self.plugin.registry_add(vcq)
        return vcq

    def destroy_cq(self, vcq: VirtualCq) -> None:
        self._charge()
        self._real.destroy_cq(vcq.real)
        self.plugin.registry_remove(vcq)

    def poll_cq(self, vcq: VirtualCq, num_entries: int) -> List[ibv_wc]:
        """Inline function → dispatch through the (plugin's) ops table."""
        return vcq.context.ops.poll_cq(vcq, num_entries)

    def req_notify_cq(self, vcq: VirtualCq, solicited_only: bool = False):
        return vcq.context.ops.req_notify_cq(vcq, solicited_only)

    def get_cq_event(self, notify_event):
        return notify_event

    # -- srqs ---------------------------------------------------------------------------

    def create_srq(self, vpd: VirtualPd, max_wr: int = 4096) -> VirtualSrq:
        self._charge()
        real = self._real.create_srq(vpd.real, max_wr)
        vsrq = VirtualSrq(real=real, vpd=vpd, max_wr=max_wr)
        self.plugin.registry_add(vsrq)
        return vsrq

    def modify_srq(self, vsrq: VirtualSrq, limit: int) -> None:
        self._charge()
        vsrq.modify_log.append(limit)  # recorded for restart replay
        vsrq.limit = limit
        self._real.modify_srq(vsrq.real, limit)

    def destroy_srq(self, vsrq: VirtualSrq) -> None:
        self._charge()
        self._real.destroy_srq(vsrq.real)
        self.plugin.registry_remove(vsrq)

    def post_srq_recv(self, vsrq: VirtualSrq, wr: ibv_recv_wr) -> None:
        return vsrq.context.ops.post_srq_recv(vsrq, wr)

    # -- qps ------------------------------------------------------------------------------

    def create_qp(self, vpd: VirtualPd,
                  init_attr: ibv_qp_init_attr) -> VirtualQp:
        self._charge()
        return self.plugin.create_qp(vpd, init_attr)

    def modify_qp(self, vqp: VirtualQp, attr, mask: QpAttrMask) -> None:
        self._charge()
        monitor = self.plugin.monitor
        if monitor is not None:
            # validate against the shared transition table before the call
            # is logged or forwarded — an illegal jump must not poison the
            # replay log
            monitor.on_modify_qp(vqp, attr, mask)
        # Principle 3: record for restart replay (with the app's VIRTUAL ids)
        vqp.modify_log.append((attr.copy(), mask))
        if mask & QpAttrMask.DEST_QPN:
            vqp.remote_vqpn = attr.dest_qp_num
        if mask & QpAttrMask.AV:
            vqp.remote_vlid = attr.dlid
        self._real.modify_qp(
            vqp.real, self.plugin.translate_qp_attr(attr, mask, vqp), mask)

    def destroy_qp(self, vqp: VirtualQp) -> None:
        self._charge()
        self._real.destroy_qp(vqp.real)
        self.plugin.registry_remove(vqp)
        if self.plugin.monitor is not None:
            self.plugin.monitor.on_destroy_qp(vqp)

    def post_send(self, vqp: VirtualQp, wr: ibv_send_wr) -> None:
        """Inline function → dispatch through the (plugin's) ops table."""
        return vqp.context.ops.post_send(vqp, wr)

    def post_recv(self, vqp: VirtualQp, wr: ibv_recv_wr) -> None:
        return vqp.context.ops.post_recv(vqp, wr)

    # -- ops-table entries (installed into VirtualContext.ops) ------------------------

    def ops_post_send(self, vqp: VirtualQp, wr: ibv_send_wr) -> None:
        logical = sum(s.length for s in wr.sg_list)
        self._charge(logical)
        self.plugin.charge_ib2tcp_copy(logical)
        if vqp.qp_type is QpType.UD:
            raise UnsupportedQpTypeError(
                "UD queue pairs are not supported (§4)")
        if self.plugin.delegated:
            self.plugin.fallback.post_send(vqp, wr)
            return
        is_inline = bool(wr.send_flags & SendFlags.INLINE)
        rdma = wr.opcode in (WrOpcode.RDMA_WRITE, WrOpcode.RDMA_WRITE_WITH_IMM)
        assume = (wr.opcode is WrOpcode.RDMA_WRITE_WITH_IMM
                  or (rdma and is_inline))
        signaled = vqp.sq_sig_all or bool(wr.send_flags & SendFlags.SIGNALED)
        entry = SendLogEntry(wr=wr.copy(), signaled=signaled,
                             assume_complete_on_drain=assume)
        vqp.send_log.append(entry)
        real_wr = self._translate_send_wr(vqp, wr)
        vqp.context.real_ops.post_send(vqp.real, real_wr)

    def ops_post_recv(self, vqp: VirtualQp, wr: ibv_recv_wr) -> None:
        self._charge()
        self.plugin.charge_ib2tcp_copy(0.0)
        vqp.recv_log.append(RecvLogEntry(wr=wr.copy()))
        if self.plugin.delegated:
            self.plugin.fallback.post_recv(vqp, wr.copy())
            return
        vqp.context.real_ops.post_recv(vqp.real,
                                       self._translate_recv_wr(wr))

    def ops_post_srq_recv(self, vsrq: VirtualSrq, wr: ibv_recv_wr) -> None:
        self._charge()
        vsrq.recv_log.append(RecvLogEntry(wr=wr.copy()))
        if self.plugin.delegated:
            self.plugin.fallback.post_srq_recv(vsrq, wr.copy())
            return
        vsrq.context.real_ops.post_srq_recv(vsrq.real,
                                            self._translate_recv_wr(wr))

    def ops_poll_cq(self, vcq: VirtualCq, num_entries: int) -> List[ibv_wc]:
        """Principle 5: refill from the plugin's private queue first; the
        real CQ is only polled once the private queue is empty."""
        self._charge()
        private_before = len(vcq.private_queue)
        out: List[ibv_wc] = []
        while vcq.private_queue and len(out) < num_entries:
            out.append(vcq.private_queue.pop(0))
        served_private = len(out)
        if len(out) < num_entries and not self.plugin.delegated:
            real_wcs = vcq.context.real_ops.poll_cq(
                vcq.real, num_entries - len(out))
            for wc in real_wcs:
                self.plugin.bookkeep_completion(wc)
                out.append(self.plugin.translate_wc(wc))
        tracer = self.plugin.tracer
        if tracer is not None and (private_before > 0 or len(out)
                                   > served_private):
            # empty polls are not recorded — only refill activity and
            # real-CQ hits carry Principle-5 evidence
            tracer.emit("refill.poll", self.plugin.appctx.name,
                        self.plugin.appctx.env.now,
                        private_before=private_before,
                        served_private=served_private,
                        served_real=len(out) - served_private,
                        restarted=self.plugin.restarted)
        return out

    def ops_req_notify_cq(self, vcq: VirtualCq, solicited_only: bool = False):
        self._charge()
        return self.plugin.arm_notify(vcq)

    # -- wr translation --------------------------------------------------------------

    def _translate_send_wr(self, vqp: VirtualQp,
                           wr: ibv_send_wr) -> ibv_send_wr:
        real_wr = wr.copy()
        real_wr.sg_list = [self.plugin.translate_sge(s) for s in wr.sg_list]
        if wr.opcode in (WrOpcode.RDMA_WRITE, WrOpcode.RDMA_WRITE_WITH_IMM,
                         WrOpcode.RDMA_READ):
            real_wr.rkey = self.plugin.translate_rkey(vqp, wr.rkey)
            real_wr.remote_addr = wr.remote_addr  # virtual addrs restored 1:1
        return real_wr

    def _translate_recv_wr(self, wr: ibv_recv_wr) -> ibv_recv_wr:
        real_wr = wr.copy()
        real_wr.sg_list = [self.plugin.translate_sge(s) for s in wr.sg_list]
        return real_wr
