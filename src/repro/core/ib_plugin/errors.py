"""Plugin-specific failure modes (each mirrors a limitation the paper
discusses in §4/§7)."""

from __future__ import annotations

__all__ = [
    "IbPluginError",
    "HeterogeneousDriverError",
    "UnsupportedQpTypeError",
    "VirtualIdConflictError",
    "NoInfinibandError",
    "WqeLogError",
]


class IbPluginError(RuntimeError):
    """Base class for InfiniBand-plugin failures."""


class HeterogeneousDriverError(IbPluginError):
    """Restart onto a different HCA vendor: the checkpoint image embeds the
    original vendor's user-space driver (§4).  The §7 future-work fix —
    forcing the library to re-initialize and load the right driver — is
    available as ``allow_driver_reload=True``."""


class UnsupportedQpTypeError(IbPluginError):
    """Unreliable-datagram QPs are not supported for checkpointing (§4)."""


class VirtualIdConflictError(IbPluginError):
    """An InfiniBand object created *after* restart received a real id that
    collides with a pre-checkpoint virtual id (§7's theoretical conflict).
    Construct the plugin with ``globally_unique_vids=True`` for the fix the
    paper proposes."""


class NoInfinibandError(IbPluginError):
    """Restarted on a node with no HCA and no IB2TCP fallback configured."""


class WqeLogError(IbPluginError):
    """A completion arrived for a ``wr_id`` that was never posted (or was
    already retired).  Principle 3 pairs every polled completion with a
    logged WQE; an orphan completion means the log and the hardware have
    diverged — the exact stale-handle / unmatched-WQE regression class the
    protocol checker exists to catch, so it is a typed, loud failure
    rather than a silent no-op."""
