"""The InfiniBand DMTCP plugin (the paper's primary contribution)."""

from .errors import (
    HeterogeneousDriverError,
    IbPluginError,
    NoInfinibandError,
    UnsupportedQpTypeError,
    VirtualIdConflictError,
    WqeLogError,
)
from .plugin import InfinibandPlugin
from .shadow import (
    RecvLogEntry,
    SendLogEntry,
    VirtualContext,
    VirtualCq,
    VirtualMr,
    VirtualPd,
    VirtualQp,
    VirtualSrq,
)
from .wrappers import WrappedVerbs

__all__ = [
    "HeterogeneousDriverError",
    "IbPluginError",
    "InfinibandPlugin",
    "NoInfinibandError",
    "RecvLogEntry",
    "SendLogEntry",
    "UnsupportedQpTypeError",
    "VirtualContext",
    "VirtualCq",
    "VirtualMr",
    "VirtualPd",
    "VirtualQp",
    "VirtualSrq",
    "VirtualIdConflictError",
    "WqeLogError",
    "WrappedVerbs",
]
