"""Shadow (virtual) structs — paper §3.1, Principle 1.

The application is never shown a pointer to a real InfiniBand resource.
Each virtual struct mirrors the user-visible fields of its real counterpart
(with *virtual* ids), records the creation parameters needed to re-create a
semantically equivalent resource on restart, and privately points at the
current real struct.  After a restart the ``real`` pointer is swapped; the
virtual ids the application cached never change.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from ...ibverbs.enums import AccessFlags, QpState, QpType
from .errors import WqeLogError
from ...ibverbs.structs import (
    ibv_context_ops,
    ibv_qp_attr,
    ibv_recv_wr,
    ibv_send_wr,
)

__all__ = [
    "VirtualContext",
    "VirtualPd",
    "VirtualMr",
    "VirtualCq",
    "VirtualSrq",
    "VirtualQp",
    "SendLogEntry",
    "RecvLogEntry",
    "WqeLog",
]


@dataclass
class VirtualContext:
    """Shadow of ibv_context.  ``ops`` holds the *plugin's* function
    pointers (Principle 2): inline API calls dispatching through this table
    land in the plugin, which forwards to the saved real pointers."""

    real: Any
    device_name: str
    vendor: str
    ops: ibv_context_ops = field(default_factory=ibv_context_ops)
    real_ops: Optional[ibv_context_ops] = None  # saved originals
    vlid: int = 0          # virtual lid: frozen at first query_port
    real_lid: int = 0


@dataclass
class VirtualPd:
    real: Any
    vcontext: VirtualContext
    guid: Tuple[str, int]  # globally unique pd id: (process name, index)

    @property
    def context(self) -> VirtualContext:
        return self.vcontext


@dataclass
class VirtualMr:
    real: Any
    vpd: VirtualPd
    addr: int
    length: int
    access: AccessFlags
    lkey: int   # virtual lkey (== real until first restart)
    rkey: int   # virtual rkey

    @property
    def pd(self) -> VirtualPd:
        return self.vpd

    @property
    def context(self) -> VirtualContext:
        return self.vpd.vcontext


@dataclass
class VirtualCq:
    real: Any
    vcontext: VirtualContext
    cqe: int
    # Principles 4/5: completions drained from the real CQ at checkpoint
    # time, served back to the application before any real poll
    private_queue: List[Any] = field(default_factory=list)
    # a pending blocking-wait event (wrapped ibv_get_cq_event) to re-arm
    pending_notify: Any = None

    @property
    def context(self) -> VirtualContext:
        return self.vcontext


@dataclass
class SendLogEntry:
    """A posted send WQE not yet known to be complete (Principle 3)."""

    wr: ibv_send_wr          # with VIRTUAL ids in sges/rkey
    signaled: bool
    #: §4: immediate/inline RDMA posts never produce a local completion;
    #: the drain protocol assumes them complete once the network is quiet
    assume_complete_on_drain: bool = False


@dataclass
class RecvLogEntry:
    wr: ibv_recv_wr          # with VIRTUAL lkeys


class WqeLog:
    """An outstanding-WQE log with O(1) completion matching.

    Entries live in an insertion-ordered dict keyed by a monotonic
    sequence number, with a per-``wr_id`` FIFO of sequence numbers on the
    side (wr_ids are application-chosen and may repeat, so they cannot
    key the log directly).  Iteration yields entries in post order —
    Principle 3/6 replay re-posts in exactly the order the application
    posted.  :meth:`complete_recv` removes the oldest entry with a given
    wr_id in O(1); :meth:`complete_send_upto` removes the whole prefix
    through the oldest match (ordered-completion semantics: a signaled
    completion implies every earlier WQE on the QP completed), costing
    O(removed) — amortized O(1) per posted WQE.
    """

    __slots__ = ("_entries", "_by_wr_id", "_seq")

    def __init__(self) -> None:
        self._entries: Dict[int, Any] = {}
        self._by_wr_id: Dict[int, Deque[int]] = {}
        self._seq = 0

    def append(self, entry: Any) -> None:
        seq = self._seq
        self._seq += 1
        self._entries[seq] = entry
        self._by_wr_id.setdefault(entry.wr.wr_id, deque()).append(seq)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def _drop_seq(self, seq: int) -> None:
        entry = self._entries.pop(seq)
        seqs = self._by_wr_id.get(entry.wr.wr_id)
        if seqs is not None:
            seqs.remove(seq)
            if not seqs:
                del self._by_wr_id[entry.wr.wr_id]

    def complete_recv(self, wr_id: int) -> bool:
        """Destroy the oldest logged WQE with ``wr_id``.

        Raises :class:`WqeLogError` if no such WQE was ever posted — a
        completion without a matching log entry violates Principle 3.
        """
        seqs = self._by_wr_id.get(wr_id)
        if not seqs:
            raise WqeLogError(
                f"orphan completion: wr_id {wr_id:#x} matches no logged "
                "recv WQE (Principle 3: every post stays logged until "
                "its completion is polled)")
        seq = seqs.popleft()
        if not seqs:
            del self._by_wr_id[wr_id]
        del self._entries[seq]
        return True

    def complete_send_upto(self, wr_id: int) -> bool:
        """Destroy every WQE up to and including the oldest one with
        ``wr_id`` (ordered completions).

        Raises :class:`WqeLogError` if ``wr_id`` was never posted (or was
        already retired): prefix retirement against an unknown wr_id
        would silently desynchronize the log from the hardware.
        """
        seqs = self._by_wr_id.get(wr_id)
        if not seqs:
            raise WqeLogError(
                f"orphan completion: wr_id {wr_id:#x} matches no logged "
                "send WQE (already retired, or never posted)")
        target = seqs[0]
        # the prefix is exactly the dict's leading keys (seqs are
        # monotonic): stop at the first key past the target, so the walk
        # touches only what it removes — amortized O(1) per post
        prefix = []
        for seq in self._entries:
            if seq > target:
                break
            prefix.append(seq)
        for seq in prefix:
            self._drop_seq(seq)
        return True

    def retain(self, pred: Callable[[Any], bool]) -> None:
        """Keep only entries where ``pred(entry)`` holds, in order."""
        for seq in [s for s, e in self._entries.items() if not pred(e)]:
            self._drop_seq(seq)


@dataclass
class VirtualSrq:
    real: Any
    vpd: VirtualPd
    max_wr: int
    limit: int = 0
    modify_log: List[int] = field(default_factory=list)  # limits, in order
    recv_log: WqeLog = field(default_factory=WqeLog)

    @property
    def pd(self) -> VirtualPd:
        return self.vpd

    @property
    def context(self) -> VirtualContext:
        return self.vpd.vcontext


@dataclass
class VirtualQp:
    """Shadow of ibv_qp (Figure 2): virtual number, logs, creation params."""

    real: Any
    vpd: VirtualPd
    qp_num: int              # virtual qp_num (== real until first restart)
    qp_type: QpType
    vsend_cq: VirtualCq
    vrecv_cq: VirtualCq
    vsrq: Optional[VirtualSrq]
    sq_sig_all: bool
    max_send_wr: int = 256
    max_recv_wr: int = 256
    max_inline_data: int = 256
    # Principle 3 logs
    modify_log: List[Tuple[ibv_qp_attr, Any]] = field(default_factory=list)
    send_log: WqeLog = field(default_factory=WqeLog)
    recv_log: WqeLog = field(default_factory=WqeLog)
    #: remote *virtual* (lid, qp number), captured from the app's
    #: modify_qp(RTR) call — qp numbers are only unique per HCA, so the
    #: pub-sub namespace keys pairs, not bare numbers
    remote_vqpn: Optional[int] = None
    remote_vlid: Optional[int] = None

    @property
    def pd(self) -> VirtualPd:
        return self.vpd

    @property
    def context(self) -> VirtualContext:
        return self.vpd.vcontext

    @property
    def send_cq(self) -> VirtualCq:
        return self.vsend_cq

    @property
    def recv_cq(self) -> VirtualCq:
        return self.vrecv_cq

    @property
    def srq(self) -> Optional[VirtualSrq]:
        return self.vsrq

    @property
    def state(self) -> QpState:
        """The app may read qp.state; mirror the real struct's."""
        return self.real.state if self.real is not None else QpState.RESET
