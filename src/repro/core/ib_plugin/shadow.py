"""Shadow (virtual) structs — paper §3.1, Principle 1.

The application is never shown a pointer to a real InfiniBand resource.
Each virtual struct mirrors the user-visible fields of its real counterpart
(with *virtual* ids), records the creation parameters needed to re-create a
semantically equivalent resource on restart, and privately points at the
current real struct.  After a restart the ``real`` pointer is swapped; the
virtual ids the application cached never change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ...ibverbs.enums import AccessFlags, QpState, QpType
from ...ibverbs.structs import (
    ibv_context_ops,
    ibv_qp_attr,
    ibv_recv_wr,
    ibv_send_wr,
)

__all__ = [
    "VirtualContext",
    "VirtualPd",
    "VirtualMr",
    "VirtualCq",
    "VirtualSrq",
    "VirtualQp",
    "SendLogEntry",
    "RecvLogEntry",
]


@dataclass
class VirtualContext:
    """Shadow of ibv_context.  ``ops`` holds the *plugin's* function
    pointers (Principle 2): inline API calls dispatching through this table
    land in the plugin, which forwards to the saved real pointers."""

    real: Any
    device_name: str
    vendor: str
    ops: ibv_context_ops = field(default_factory=ibv_context_ops)
    real_ops: Optional[ibv_context_ops] = None  # saved originals
    vlid: int = 0          # virtual lid: frozen at first query_port
    real_lid: int = 0


@dataclass
class VirtualPd:
    real: Any
    vcontext: VirtualContext
    guid: Tuple[str, int]  # globally unique pd id: (process name, index)

    @property
    def context(self) -> VirtualContext:
        return self.vcontext


@dataclass
class VirtualMr:
    real: Any
    vpd: VirtualPd
    addr: int
    length: int
    access: AccessFlags
    lkey: int   # virtual lkey (== real until first restart)
    rkey: int   # virtual rkey

    @property
    def pd(self) -> VirtualPd:
        return self.vpd

    @property
    def context(self) -> VirtualContext:
        return self.vpd.vcontext


@dataclass
class VirtualCq:
    real: Any
    vcontext: VirtualContext
    cqe: int
    # Principles 4/5: completions drained from the real CQ at checkpoint
    # time, served back to the application before any real poll
    private_queue: List[Any] = field(default_factory=list)
    # a pending blocking-wait event (wrapped ibv_get_cq_event) to re-arm
    pending_notify: Any = None

    @property
    def context(self) -> VirtualContext:
        return self.vcontext


@dataclass
class SendLogEntry:
    """A posted send WQE not yet known to be complete (Principle 3)."""

    wr: ibv_send_wr          # with VIRTUAL ids in sges/rkey
    signaled: bool
    #: §4: immediate/inline RDMA posts never produce a local completion;
    #: the drain protocol assumes them complete once the network is quiet
    assume_complete_on_drain: bool = False


@dataclass
class RecvLogEntry:
    wr: ibv_recv_wr          # with VIRTUAL lkeys


@dataclass
class VirtualSrq:
    real: Any
    vpd: VirtualPd
    max_wr: int
    limit: int = 0
    modify_log: List[int] = field(default_factory=list)  # limits, in order
    recv_log: List[RecvLogEntry] = field(default_factory=list)

    @property
    def pd(self) -> VirtualPd:
        return self.vpd

    @property
    def context(self) -> VirtualContext:
        return self.vpd.vcontext


@dataclass
class VirtualQp:
    """Shadow of ibv_qp (Figure 2): virtual number, logs, creation params."""

    real: Any
    vpd: VirtualPd
    qp_num: int              # virtual qp_num (== real until first restart)
    qp_type: QpType
    vsend_cq: VirtualCq
    vrecv_cq: VirtualCq
    vsrq: Optional[VirtualSrq]
    sq_sig_all: bool
    max_send_wr: int = 256
    max_recv_wr: int = 256
    max_inline_data: int = 256
    # Principle 3 logs
    modify_log: List[Tuple[ibv_qp_attr, Any]] = field(default_factory=list)
    send_log: List[SendLogEntry] = field(default_factory=list)
    recv_log: List[RecvLogEntry] = field(default_factory=list)
    #: remote *virtual* (lid, qp number), captured from the app's
    #: modify_qp(RTR) call — qp numbers are only unique per HCA, so the
    #: pub-sub namespace keys pairs, not bare numbers
    remote_vqpn: Optional[int] = None
    remote_vlid: Optional[int] = None

    @property
    def pd(self) -> VirtualPd:
        return self.vpd

    @property
    def context(self) -> VirtualContext:
        return self.vpd.vcontext

    @property
    def send_cq(self) -> VirtualCq:
        return self.vsend_cq

    @property
    def recv_cq(self) -> VirtualCq:
        return self.vrecv_cq

    @property
    def srq(self) -> Optional[VirtualSrq]:
        return self.vsrq

    @property
    def state(self) -> QpState:
        """The app may read qp.state; mirror the real struct's."""
        return self.real.state if self.real is not None else QpState.RESET
